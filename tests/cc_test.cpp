#include <gtest/gtest.h>

#include "algos/cc/ecl_cc.hpp"

#include "algos/common.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/properties.hpp"

namespace eclp::algos::cc {
namespace {

using graph::from_edges;

TEST(EclCc, SingleVertex) {
  sim::Device dev;
  const auto g = from_edges(1, {});
  const auto res = run(dev, g);
  EXPECT_EQ(res.labels[0], 0u);
  EXPECT_TRUE(verify(g, res.labels));
}

TEST(EclCc, DisconnectedComponentsGetDistinctLabels) {
  sim::Device dev;
  const auto g = from_edges(6, {{0, 1, 0}, {1, 2, 0}, {3, 4, 0}});
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.labels));
  EXPECT_EQ(res.labels[0], res.labels[2]);
  EXPECT_NE(res.labels[0], res.labels[3]);
  EXPECT_EQ(res.labels[5], 5u);
}

TEST(EclCc, LabelsAreRepresentatives) {
  sim::Device dev;
  const auto g = gen::uniform_random(2000, 3000, 1);
  const auto res = run(dev, g);
  // Every label must point at a vertex carrying its own label (a root).
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(res.labels[res.labels[v]], res.labels[v]);
  }
}

TEST(EclCc, RejectsDirectedGraph) {
  sim::Device dev;
  graph::BuildOptions opt;
  opt.directed = true;
  const auto g = from_edges(3, {{0, 1, 0}}, opt);
  EXPECT_THROW(run(dev, g), CheckFailure);
}

TEST(EclCc, InitCountersOnGrid) {
  // On a torus grid every vertex has degree 4 and sorted adjacency; the
  // expected traversal count is analytic: a vertex traverses 1 entry when
  // its first neighbor is smaller, else all 4 (paper §6.1.3: "either 1 or
  // equal to the vertex's degree").
  sim::Device dev;
  const auto g = gen::grid2d_torus(32);
  const auto res = run(dev, g);
  EXPECT_EQ(res.profile.vertices_initialized, g.num_vertices());
  u64 expected = 0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    expected += g.neighbors(v)[0] < v ? 1 : g.degree(v);
  }
  EXPECT_EQ(res.profile.init_neighbors_traversed, expected);
}

TEST(EclCc, OptimizedInitTraversesAtMostOnePerVertex) {
  sim::Device dev;
  const auto g = gen::citation(5000, 4.0, 0.35, 7);
  Options opt;
  opt.optimized_init = true;
  const auto res = run(dev, g, opt);
  EXPECT_LE(res.profile.init_neighbors_traversed, g.num_vertices());
  EXPECT_TRUE(verify(g, res.labels));
}

TEST(EclCc, OptimizedInitGivesSameComponents) {
  const auto g = gen::rmat(12, 20000, 0.45, 0.22, 0.22, 3);
  sim::Device d1, d2;
  Options opt;
  const auto original = run(d1, g, opt);
  opt.optimized_init = true;
  const auto optimized = run(d2, g, opt);
  EXPECT_EQ(normalize_labels(original.labels),
            normalize_labels(optimized.labels));
}

TEST(EclCc, OptimizedInitIsCheaperOnTraversalHeavyInput) {
  // Citation graphs have many vertices without a smaller neighbor; the
  // optimized init must reduce the init kernel's modeled cycles (Table 7).
  const auto g = gen::citation(20000, 4.0, 0.35, 9);
  sim::Device d1, d2;
  Options opt;
  const auto original = run(d1, g, opt);
  opt.optimized_init = true;
  const auto optimized = run(d2, g, opt);
  EXPECT_LT(optimized.init_cycles, original.init_cycles);
}

TEST(EclCc, DegreeBinsPartitionVertices) {
  sim::Device dev;
  const auto g = gen::preferential_attachment(3000, 5, 2);
  const auto res = run(dev, g);
  EXPECT_EQ(res.profile.low_bin_vertices + res.profile.mid_bin_vertices +
                res.profile.high_bin_vertices,
            g.num_vertices());
  EXPECT_GT(res.profile.mid_bin_vertices + res.profile.high_bin_vertices, 0u);
}

TEST(EclCc, HookStatsAreConsistent) {
  sim::Device dev;
  const auto g = gen::uniform_random(4000, 12000, 4);
  const auto res = run(dev, g);
  EXPECT_EQ(res.profile.hook_cas_success + res.profile.hook_cas_failure,
            res.profile.hook_attempts);
  // The init heuristic already links every vertex that has a smaller
  // neighbor; successful CAS hooks merge exactly the remaining union-find
  // trees down to one per component.
  usize init_roots = 0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    init_roots += (g.degree(v) == 0 || g.neighbors(v)[0] > v);
  }
  const usize comps = graph::count_components(g);
  EXPECT_EQ(res.profile.hook_cas_success, init_roots - comps);
}

TEST(EclCc, ModeledCyclesDeterministic) {
  const auto g = gen::grid2d_torus(24);
  sim::Device d1, d2;
  EXPECT_EQ(run(d1, g).modeled_cycles, run(d2, g).modeled_cycles);
}

TEST(EclCc, InitCyclesAreTrackedSeparately) {
  sim::Device dev;
  const auto g = gen::grid2d_torus(24);
  const auto res = run(dev, g);
  EXPECT_GT(res.init_cycles, 0u);
  EXPECT_LT(res.init_cycles, res.modeled_cycles);
}

class CcSuiteTest : public ::testing::TestWithParam<usize> {};

TEST_P(CcSuiteTest, MatchesReferenceOnSuiteInput) {
  const auto& spec = gen::general_inputs()[GetParam()];
  const auto g = spec.make(gen::Scale::kTiny);
  sim::Device dev;
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.labels)) << spec.name;
}

TEST_P(CcSuiteTest, OptimizedVariantMatchesToo) {
  const auto& spec = gen::general_inputs()[GetParam()];
  const auto g = spec.make(gen::Scale::kTiny);
  sim::Device dev;
  Options opt;
  opt.optimized_init = true;
  const auto res = run(dev, g, opt);
  EXPECT_TRUE(verify(g, res.labels)) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllInputs, CcSuiteTest,
                         ::testing::Range<usize>(0, 17));

TEST(EclCc, WorksUnderShuffledSchedule) {
  const auto g = gen::uniform_random(3000, 9000, 6);
  for (const u64 seed : {1ull, 2ull, 3ull}) {
    sim::Device dev({}, seed, sim::ScheduleMode::kShuffled);
    EXPECT_TRUE(verify(g, run(dev, g).labels)) << "seed " << seed;
  }
}

TEST(EclCc, ThreadsPerBlockDoesNotChangeResult) {
  const auto g = gen::rmat(11, 8000, 0.45, 0.22, 0.22, 8);
  std::vector<vidx> first;
  for (const u32 tpb : {64u, 128u, 512u}) {
    sim::Device dev;
    Options opt;
    opt.threads_per_block = tpb;
    auto labels = normalize_labels(run(dev, g, opt).labels);
    if (first.empty()) {
      first = std::move(labels);
    } else {
      EXPECT_EQ(first, labels) << "tpb " << tpb;
    }
  }
}

}  // namespace
}  // namespace eclp::algos::cc
