# Telemetry smoke check, run as `cmake -P` by the metrics-smoke ctest label.
#
# Inputs (all -D): ECLP_SERVE, ECLP_METRICS (tool paths), WORK_DIR
# (scratch directory, recreated every run).
#
# Steps:
#  1. serve a mixed request file with --metrics/--trace/--stats-json: the
#     snapshot JSONL, its Prometheus twin, and the trace log must all be
#     written;
#  2. schema: eclp-metrics --check must validate every snapshot line, and
#     the snapshot's counters must agree with --stats-json (completed,
#     failed, pool hits/misses) — the registry and ServerStats are two
#     views of one serving run;
#  3. self-diff: eclp-metrics between the run's snapshots and themselves
#     must report zero regressions and exit 0;
#  4. tracing: the trace log must contain admitted/started/pool/finished
#     events for a known request id, and a "cause" on the failing one;
#  5. slow-request hook: --slow-ms=0 must write one span tree per
#     completed request into --slow-dir, and a second serving with a huge
#     threshold must write none.
foreach(var ECLP_SERVE ECLP_METRICS WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "metrics_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(requests "${WORK_DIR}/requests.jsonl")
file(WRITE "${requests}" [=[
# metrics-smoke request mix: shared graphs, every status, one failure
{"id": "cc-rmat", "algo": "cc", "input": "rmat16.sym", "scale": "tiny"}
{"id": "gc-rmat", "algo": "gc", "input": "rmat16.sym", "scale": "tiny"}
{"id": "mis-inet", "algo": "mis", "input": "internet", "scale": "tiny"}
{"id": "scc-bad", "algo": "scc", "input": "rmat16.sym", "scale": "tiny"}
]=])

# --- 1. serve with telemetry on ----------------------------------------------
execute_process(
  COMMAND "${ECLP_SERVE}" --requests=${requests} --threads=4
          --out=${WORK_DIR}/out.jsonl
          --metrics=${WORK_DIR}/metrics.jsonl
          --trace=${WORK_DIR}/trace.jsonl
          --stats-json=${WORK_DIR}/stats.json
          --slow-ms=0 --slow-dir=${WORK_DIR}/slow
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
# scc-bad fails by design, so eclp-serve exits 1; anything else is wrong.
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "telemetry serving: expected exit 1 (one failing "
          "request), got ${rc}:\n${out}\n${err}")
endif()
foreach(artifact metrics.jsonl metrics.prom trace.jsonl stats.json)
  if(NOT EXISTS "${WORK_DIR}/${artifact}")
    message(FATAL_ERROR "telemetry serving did not write ${artifact}")
  endif()
endforeach()

# --- 2. schema + stats agreement ---------------------------------------------
execute_process(
  COMMAND "${ECLP_METRICS}" --check=${WORK_DIR}/metrics.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "snapshot failed schema validation (${rc}):\n${out}\n${err}")
endif()

file(READ "${WORK_DIR}/metrics.jsonl" snapshots)
string(REPLACE "\n" ";" snapshot_lines "${snapshots}")
list(GET snapshot_lines -1 last)
if(last STREQUAL "")
  list(GET snapshot_lines -2 last)
endif()
file(READ "${WORK_DIR}/stats.json" stats)
foreach(pair "completed;serve.completed" "failed;serve.failed"
             "rejected;serve.rejected")
  list(GET pair 0 stats_key)
  list(GET pair 1 metric)
  string(JSON from_stats GET "${stats}" ${stats_key})
  string(JSON from_metrics GET "${last}" counters ${metric})
  if(NOT from_stats EQUAL from_metrics)
    message(FATAL_ERROR "stats-json ${stats_key}=${from_stats} disagrees "
            "with snapshot ${metric}=${from_metrics}")
  endif()
endforeach()
string(JSON pool_hits GET "${stats}" graph_pool hits)
string(JSON metric_hits GET "${last}" counters pool.hits)
if(NOT pool_hits EQUAL metric_hits)
  message(FATAL_ERROR "stats-json pool hits=${pool_hits} disagrees with "
          "snapshot pool.hits=${metric_hits}")
endif()
string(JSON queue_peak GET "${stats}" queue_peak)
if(queue_peak LESS 1)
  message(FATAL_ERROR "stats-json queue_peak must be >= 1, got ${queue_peak}")
endif()

# --- 3. self-diff is clean ---------------------------------------------------
execute_process(
  COMMAND "${ECLP_METRICS}" "${WORK_DIR}/metrics.jsonl"
          "${WORK_DIR}/metrics.jsonl"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "self-diff reported regressions (${rc}):\n${out}\n${err}")
endif()

# --- 4. trace events ---------------------------------------------------------
file(READ "${WORK_DIR}/trace.jsonl" trace)
foreach(event admitted started pool finished)
  string(REGEX MATCH "\"id\":\"cc-rmat\",\"event\":\"${event}\"" hit "${trace}")
  if(NOT hit)
    message(FATAL_ERROR "trace log lacks the ${event} event for cc-rmat:\n"
            "${trace}")
  endif()
endforeach()
string(REGEX MATCH "\"id\":\"scc-bad\",\"event\":\"finished\",[^\n]*\"cause\""
       failure_cause "${trace}")
if(NOT failure_cause)
  message(FATAL_ERROR "failing request's finished event lacks a cause:\n"
          "${trace}")
endif()

# --- 5. slow-request hook ----------------------------------------------------
foreach(id cc-rmat gc-rmat mis-inet)
  if(NOT EXISTS "${WORK_DIR}/slow/${id}.json")
    message(FATAL_ERROR "--slow-ms=0 did not write slow/${id}.json")
  endif()
endforeach()
execute_process(
  COMMAND "${ECLP_SERVE}" --requests=${requests} --threads=4
          --out=${WORK_DIR}/out2.jsonl
          --slow-ms=1000000 --slow-dir=${WORK_DIR}/slow_none
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "second serving: expected exit 1, got "
          "${rc}:\n${out}\n${err}")
endif()
file(GLOB slow_none_files "${WORK_DIR}/slow_none/*.json")
if(slow_none_files)
  message(FATAL_ERROR "a huge --slow-ms still wrote span trees: "
          "${slow_none_files}")
endif()

message(STATUS "metrics smoke: ok")
