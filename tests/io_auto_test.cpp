// Extension-dispatched load/save, plot rendering, and harness plumbing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "support/plot.hpp"

namespace eclp {
namespace {

namespace fs = std::filesystem;

class AutoFormatTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::string path_for(const char* ext) {
    return (fs::temp_directory_path() /
            (std::string("eclp_auto_test.") + ext))
        .string();
  }
};

TEST_P(AutoFormatTest, RoundtripUndirected) {
  const auto g = gen::uniform_random(80, 200, 7);
  const auto path = path_for(GetParam());
  graph::save_any(g, path);
  const auto back = graph::load_any(path);
  EXPECT_TRUE(back == g) << path;
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Formats, AutoFormatTest,
                         ::testing::Values("eclg", "mtx", "col", "el"));

TEST(AutoFormat, WeightedRoundtripViaGr) {
  graph::BuildOptions opt;
  opt.directed = true;
  opt.weighted = true;
  const auto g =
      graph::from_edges(5, {{0, 1, 9}, {1, 4, 2}, {3, 2, 5}}, opt);
  const auto path =
      (fs::temp_directory_path() / "eclp_auto_test.gr").string();
  graph::save_any(g, path);
  EXPECT_TRUE(graph::load_any(path) == g);
  std::remove(path.c_str());
}

TEST(AutoFormat, UnknownExtensionThrows) {
  const auto g = gen::grid2d_torus(8);
  EXPECT_THROW(graph::save_any(g, "/tmp/graph.xyz"), CheckFailure);
  EXPECT_THROW(graph::load_any("/tmp/graph.xyz"), CheckFailure);
  EXPECT_THROW(graph::load_any("/tmp/noextension"), CheckFailure);
}

TEST(AutoFormat, EdgeListDirectednessFlag) {
  graph::BuildOptions opt;
  opt.directed = true;
  const auto g = graph::from_edges(4, {{0, 1, 0}, {2, 3, 0}, {3, 2, 0}}, opt);
  const auto path =
      (fs::temp_directory_path() / "eclp_auto_test_dir.el").string();
  graph::save_any(g, path);
  const auto directed = graph::load_any(path, /*directed=*/true);
  EXPECT_TRUE(directed.directed());
  EXPECT_EQ(directed.num_edges(), 3u);
  const auto undirected = graph::load_any(path, /*directed=*/false);
  EXPECT_FALSE(undirected.directed());
  EXPECT_EQ(undirected.num_edges(), 4u);  // 0-1 mirrored, 2-3 deduped pair
  std::remove(path.c_str());
}

// --- plots ------------------------------------------------------------------------

TEST(Plot, BarChartScalesToPeak) {
  plot::BarChart chart;
  chart.title = "demo";
  chart.series = {"a", "b"};
  chart.row_labels = {"row1", "row2"};
  chart.rows = {{100.0, 50.0}, {25.0, 0.0}};
  chart.width = 20;
  const auto out = chart.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);  // the peak
  EXPECT_NE(out.find(std::string(10, '#')), std::string::npos);  // half
  EXPECT_NE(out.find("0.0"), std::string::npos);                 // zero bar
}

TEST(Plot, BarChartRejectsRaggedRows) {
  plot::BarChart chart;
  chart.series = {"a", "b"};
  chart.row_labels = {"r"};
  chart.rows = {{1.0}};
  EXPECT_THROW(chart.render(), CheckFailure);
}

TEST(Plot, ScatterPlacesExtremePoints) {
  plot::Scatter sc;
  sc.title = "demo";
  sc.xs = {0, 1, 2, 3};
  sc.ys = {0, 5, 2, 10};
  sc.width = 20;
  sc.height = 6;
  const auto out = sc.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("y max = 10"), std::string::npos);
}

TEST(Plot, ScatterHandlesEmptyAndConstant) {
  plot::Scatter empty;
  empty.title = "empty";
  EXPECT_NE(empty.render().find("no points"), std::string::npos);
  plot::Scatter flat;
  flat.title = "flat";
  flat.xs = {1, 2};
  flat.ys = {4, 4};
  EXPECT_NE(flat.render().find('*'), std::string::npos);
}

}  // namespace
}  // namespace eclp
