#include <gtest/gtest.h>

#include "algos/baselines/fw_bw_scc.hpp"
#include "algos/baselines/label_prop_cc.hpp"
#include "algos/baselines/luby_mis.hpp"
#include "algos/cc/ecl_cc.hpp"
#include "algos/common.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"

namespace eclp::algos::baselines {
namespace {

// --- label-propagation CC ------------------------------------------------------

TEST(LabelPropCc, MatchesReferenceOnRandomGraphs) {
  for (const u64 seed : {1ull, 2ull, 3ull}) {
    sim::Device dev;
    const auto g = gen::uniform_random(3000, 6000, seed);
    const auto res = label_prop_cc(dev, g);
    EXPECT_TRUE(cc::verify(g, res.labels)) << "seed " << seed;
    EXPECT_GT(res.rounds, 0u);
  }
}

TEST(LabelPropCc, AgreesWithEclCc) {
  const auto g = gen::preferential_attachment(4000, 4, 9);
  sim::Device d1, d2;
  const auto lp = label_prop_cc(d1, g);
  const auto ecl = cc::run(d2, g);
  EXPECT_EQ(normalize_labels(lp.labels), normalize_labels(ecl.labels));
}

TEST(LabelPropCc, RoundsGrowWithDiameter) {
  sim::Device d1, d2;
  // Power-law (low diameter) vs. road network (high diameter).
  const auto low = label_prop_cc(d1, gen::preferential_attachment(8000, 5, 3));
  const auto high = label_prop_cc(d2, gen::road_network(90, 0.2, 3));
  EXPECT_GT(high.rounds, low.rounds);
}

TEST(LabelPropCc, EclCcIsCheaperOnHighDiameterInputs) {
  // The reason ECL-CC exists: union-find beats propagation when labels must
  // travel far.
  const auto g = gen::road_network(90, 0.2, 5);
  sim::Device d1, d2;
  const auto lp = label_prop_cc(d1, g);
  const auto ecl = cc::run(d2, g);
  EXPECT_GT(lp.modeled_cycles, ecl.modeled_cycles);
}

TEST(LabelPropCc, EmptyAndSingletonGraphs) {
  sim::Device dev;
  const auto g = graph::from_edges(3, {});
  const auto res = label_prop_cc(dev, g);
  for (vidx v = 0; v < 3; ++v) EXPECT_EQ(res.labels[v], v);
}

// --- Luby MIS --------------------------------------------------------------------

TEST(LubyMis, ValidOnSuiteInputs) {
  for (const char* name : {"internet", "rmat16.sym", "USA-road-d.NY"}) {
    sim::Device dev;
    const auto g = gen::find_input(name).make(gen::Scale::kTiny);
    const auto res = luby_mis(dev, g, 7);
    EXPECT_TRUE(mis::verify(g, res.status)) << name;
    EXPECT_EQ(res.set_size,
              static_cast<usize>(std::count(res.status.begin(),
                                            res.status.end(), mis::kIn)))
        << name;
  }
}

TEST(LubyMis, RoundsLogarithmicInPractice) {
  sim::Device dev;
  const auto g = gen::uniform_random(20000, 60000, 11);
  const auto res = luby_mis(dev, g, 3);
  EXPECT_TRUE(mis::verify(g, res.status));
  EXPECT_LT(res.rounds, 40u);
}

TEST(LubyMis, DifferentSeedsDifferentSets) {
  const auto g = gen::uniform_random(2000, 6000, 13);
  sim::Device d1, d2;
  const auto a = luby_mis(d1, g, 1);
  const auto b = luby_mis(d2, g, 2);
  EXPECT_TRUE(mis::verify(g, a.status));
  EXPECT_TRUE(mis::verify(g, b.status));
  EXPECT_NE(a.status, b.status);  // randomness actually matters
}

TEST(LubyMis, EclMisFindsLargerSetOnSkewedDegrees) {
  // ECL-MIS's degree-aware priority favors low-degree vertices, which grows
  // the set on power-law graphs relative to Luby's uniform randomness.
  const auto g = gen::internet_topology(20000, 17);
  sim::Device d1, d2;
  const auto luby = luby_mis(d1, g, 5);
  const auto ecl = mis::run(d2, g);
  EXPECT_GT(ecl.set_size, luby.set_size);
}

TEST(LubyMis, TriangleAndIsolated) {
  sim::Device dev;
  const auto g = graph::from_edges(5, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
  const auto res = luby_mis(dev, g, 9);
  EXPECT_TRUE(mis::verify(g, res.status));
  EXPECT_EQ(res.set_size, 3u);  // one of the triangle + vertices 3, 4
}

// --- FW-BW SCC ---------------------------------------------------------------------

graph::Csr directed(vidx n, const std::vector<graph::Edge>& edges) {
  graph::BuildOptions opt;
  opt.directed = true;
  return graph::from_edges(n, edges, opt);
}

TEST(FwBwScc, MatchesTarjanOnSmallDigraphs) {
  const auto g = directed(6, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0},
                              {3, 4, 0}, {4, 5, 0}, {5, 3, 0},
                              {2, 3, 0}});
  sim::Device dev;
  const auto res = fw_bw_scc(dev, g);
  EXPECT_TRUE(scc::verify(g, res.scc_id));
  EXPECT_EQ(res.num_sccs, 2u);
  EXPECT_GE(res.pivots, 1u);
}

TEST(FwBwScc, TrimHandlesChains) {
  sim::Device dev;
  const auto g = directed(5, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}});
  const auto res = fw_bw_scc(dev, g);
  EXPECT_TRUE(scc::verify(g, res.scc_id));
  EXPECT_EQ(res.num_sccs, 5u);
  // Pure chains are fully resolved by trimming: no pivot phases needed.
  EXPECT_EQ(res.pivots, 0u);
}

TEST(FwBwScc, MatchesTarjanOnRandomDigraphs) {
  for (const u64 seed : {4ull, 5ull, 6ull}) {
    Rng rng(seed);
    std::vector<graph::Edge> edges;
    const vidx n = 400;
    for (int e = 0; e < 1100; ++e) {
      edges.push_back({static_cast<vidx>(rng.below(n)),
                       static_cast<vidx>(rng.below(n)), 0});
    }
    const auto g = directed(n, edges);
    sim::Device dev;
    EXPECT_TRUE(scc::verify(g, fw_bw_scc(dev, g).scc_id)) << "seed " << seed;
  }
}

class FwBwMeshTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FwBwMeshTest, MatchesEclSccOnMesh) {
  const auto g = gen::find_input(GetParam()).make(gen::Scale::kTiny);
  sim::Device d1, d2;
  const auto fwbw = fw_bw_scc(d1, g);
  const auto ecl = scc::run(d2, g);
  EXPECT_EQ(normalize_labels(fwbw.scc_id), normalize_labels(ecl.scc_id));
  EXPECT_EQ(fwbw.num_sccs, ecl.num_sccs);
}

INSTANTIATE_TEST_SUITE_P(Meshes, FwBwMeshTest,
                         ::testing::Values("toroid-wedge", "star",
                                           "cold-flow", "klein-bottle"));

TEST(FwBwScc, ManySccsMeanManyPivots) {
  // star has hundreds of nontrivial SCCs: FW-BW serializes one pivot per
  // phase, which is exactly the bottleneck ECL-SCC's all-pivots scheme
  // removes.
  const auto g = gen::find_input("star").make(gen::Scale::kTiny);
  sim::Device dev;
  const auto res = fw_bw_scc(dev, g);
  EXPECT_GT(res.pivots, 10u);
}

}  // namespace
}  // namespace eclp::algos::baselines
