// Modeled-LLC tests: the CacheSim replacement behavior, the --llc spec
// grammar, and the device-level cost semantics (classified loads/stores
// charge llc_hit/llc_miss instead of flat global costs; atomics charge
// both) — see docs/SIMULATOR.md "Modeled LLC".
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/cache.hpp"
#include "sim/device.hpp"

namespace eclp::sim {
namespace {

CacheConfig tiny_cache(u32 ways, u32 sets) {
  CacheConfig cfg;
  cfg.line_bytes = 64;
  cfg.ways = ways;
  cfg.sets = sets;
  cfg.enabled = true;
  return cfg;
}

// --- CacheSim ----------------------------------------------------------------

TEST(CacheSim, SameLineHitsAfterFirstTouch) {
  CacheSim sim;
  sim.configure(tiny_cache(8, 64));
  EXPECT_FALSE(sim.access(0x1000));  // cold miss
  EXPECT_TRUE(sim.access(0x1000));   // same address
  EXPECT_TRUE(sim.access(0x1038));   // same 64-byte line
  EXPECT_FALSE(sim.access(0x1040));  // next line
  EXPECT_EQ(sim.hits(), 2u);
  EXPECT_EQ(sim.misses(), 2u);
}

TEST(CacheSim, EvictsTheLeastRecentlyUsedWay) {
  // One set, two ways: the third distinct line evicts the stalest.
  CacheSim sim;
  sim.configure(tiny_cache(2, 1));
  const std::uintptr_t a = 0x0000, b = 0x1000, c = 0x2000;
  EXPECT_FALSE(sim.access(a));
  EXPECT_FALSE(sim.access(b));
  EXPECT_TRUE(sim.access(a));   // a is now the most recent
  EXPECT_FALSE(sim.access(c));  // evicts b (LRU)
  EXPECT_TRUE(sim.access(a));   // a survived
  EXPECT_FALSE(sim.access(b));  // b was evicted
}

TEST(CacheSim, ResetClearsContentsAndCounters) {
  CacheSim sim;
  sim.configure(tiny_cache(8, 64));
  sim.access(0x1000);
  sim.access(0x1000);
  sim.reset();
  EXPECT_EQ(sim.hits(), 0u);
  EXPECT_EQ(sim.misses(), 0u);
  EXPECT_FALSE(sim.access(0x1000));  // cold again
}

TEST(CacheSim, OutcomesDependOnAccessPatternNotAbsoluteAddresses) {
  // First-touch renaming: the set a line maps to is a function of the
  // order lines are first seen, so the same pattern at any base address
  // produces the same hit/miss sequence. This is what makes per-block
  // simulation reproducible run-to-run despite ASLR.
  const auto run = [](std::uintptr_t base) {
    CacheSim sim;
    sim.configure(tiny_cache(2, 2));
    std::vector<bool> outcomes;
    for (const std::uintptr_t offset :
         {0x000, 0x040, 0x080, 0x000, 0x140, 0x180, 0x040, 0x000}) {
      outcomes.push_back(sim.access(base + offset));
    }
    return outcomes;
  };
  EXPECT_EQ(run(0x10000), run(0x7fff53a40000));
}

// --- spec grammar ------------------------------------------------------------

TEST(CacheConfigSpec, ParsesEveryForm) {
  EXPECT_FALSE(parse_cache_config("").enabled);
  EXPECT_FALSE(parse_cache_config("off").enabled);

  const CacheConfig on = parse_cache_config("on");
  EXPECT_TRUE(on.enabled);
  EXPECT_EQ(on.line_bytes, 64u);
  EXPECT_EQ(on.ways, 8u);
  EXPECT_EQ(on.sets, 64u);
  EXPECT_EQ(parse_cache_config("default").sets, 64u);

  const CacheConfig custom = parse_cache_config("32:4:16");
  EXPECT_TRUE(custom.enabled);
  EXPECT_EQ(custom.line_bytes, 32u);
  EXPECT_EQ(custom.ways, 4u);
  EXPECT_EQ(custom.sets, 16u);
}

TEST(CacheConfigSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_cache_config("63:8:64"), CheckFailure);  // line not 2^k
  EXPECT_THROW(parse_cache_config("64:0:64"), CheckFailure);  // zero ways
  EXPECT_THROW(parse_cache_config("64:8:63"), CheckFailure);  // sets not 2^k
  EXPECT_THROW(parse_cache_config("64:8"), CheckFailure);
  EXPECT_THROW(parse_cache_config("garbage"), CheckFailure);
}

TEST(CacheConfigSpec, LabelRoundTrips) {
  EXPECT_EQ(cache_config_label(parse_cache_config("off")), "off");
  EXPECT_EQ(cache_config_label(parse_cache_config("on")), "64:8:64");
  EXPECT_EQ(cache_config_label(parse_cache_config("32:4:16")), "32:4:16");
}

// --- cost semantics ----------------------------------------------------------

TEST(KernelCost, HitRateDefaultsToPerfectWhenNoAccesses) {
  KernelCost kc;
  EXPECT_DOUBLE_EQ(kc.llc_hit_rate(), 1.0);
  kc.llc_hits = 3;
  kc.llc_misses = 1;
  EXPECT_DOUBLE_EQ(kc.llc_hit_rate(), 0.75);
}

TEST(ModeledLlc, ClassifiedLoadsReplaceFlatGlobalReads) {
  // One thread loads the same u64 four times: 1 miss + 3 hits when the
  // cache is on, 4 flat global reads when it is off. Everything else about
  // the two runs is identical, so the cycle delta is exactly
  // (llc_miss + 3 * llc_hit) - 4 * global_read.
  const auto run = [](bool enabled) {
    CostModel cost;
    cost.cache.enabled = enabled;
    Device dev(cost);
    u64 value = 7;
    dev.launch("k", {1, 1}, [&](ThreadCtx& ctx) {
      for (int i = 0; i < 4; ++i) ctx.load(value);
    });
    return std::tuple{dev.total_cycles(), dev.llc_hits(), dev.llc_misses()};
  };
  const auto [off_cycles, off_hits, off_misses] = run(false);
  const auto [on_cycles, on_hits, on_misses] = run(true);
  EXPECT_EQ(off_hits, 0u);
  EXPECT_EQ(off_misses, 0u);
  EXPECT_EQ(on_hits, 3u);
  EXPECT_EQ(on_misses, 1u);
  const CostModel cost;
  EXPECT_EQ(on_cycles, off_cycles + (cost.llc_miss + 3 * cost.llc_hit) -
                           4 * cost.global_read);
}

TEST(ModeledLlc, AtomicsChargeAtomicPlusClassification) {
  // Atomics resolve at the LLC on real GPUs: they keep their flat atomic
  // cost and additionally classify the target line.
  const auto run = [](bool enabled) {
    CostModel cost;
    cost.cache.enabled = enabled;
    Device dev(cost);
    u32 value = 0;
    dev.launch("k", {1, 1}, [&](ThreadCtx& ctx) {
      ctx.atomic_add(value, 1u);
      ctx.atomic_add(value, 1u);
    });
    return std::tuple{dev.total_cycles(), dev.llc_hits(), dev.llc_misses()};
  };
  const auto [off_cycles, off_hits, off_misses] = run(false);
  const auto [on_cycles, on_hits, on_misses] = run(true);
  EXPECT_EQ(on_hits, 1u);
  EXPECT_EQ(on_misses, 1u);
  const CostModel cost;
  EXPECT_EQ(on_cycles, off_cycles + cost.llc_miss + cost.llc_hit);
}

TEST(ModeledLlc, BlockCachesAreColdPerLaunchAndSummedInBlockOrder) {
  // Two blocks touch the same array: each block's private slice is cold,
  // so both blocks miss their first touch of every line — block count
  // scales the miss count even though the data overlaps.
  alignas(64) static std::array<u64, 8> shared{};  // one 64-byte line
  CostModel cost;
  cost.cache.enabled = true;
  Device dev(cost);
  dev.launch("k", {2, 4}, [&](ThreadCtx& ctx) {
    ctx.load(shared[ctx.thread_idx()]);
  });
  // Per block: 4 accesses to one line = 1 miss + 3 hits.
  EXPECT_EQ(dev.llc_misses(), 2u);
  EXPECT_EQ(dev.llc_hits(), 6u);
  // A second launch starts cold again (no cross-kernel reuse is modeled).
  dev.launch("k2", {2, 4}, [&](ThreadCtx& ctx) {
    ctx.load(shared[ctx.thread_idx()]);
  });
  EXPECT_EQ(dev.llc_misses(), 4u);
  EXPECT_EQ(dev.llc_hits(), 12u);
}

}  // namespace
}  // namespace eclp::sim
