// Equivalence tests for the parallel ingest pipeline (graph/builder.cpp,
// the chunk-parallel readers, and the content-addressed graph cache).
//
// The pipeline's contract is stronger than "same graph": the CSR coming
// out of the parallel build must be *byte-identical* to the serial path at
// any thread count — sorted adjacency is load-bearing for ECL-CC's init
// heuristic (builder.hpp, paper §6.1.3), and every golden in this repo was
// produced by the serial builder. These tests pin that contract for the
// whole Table-1 input suite and for all four text formats, and they live
// in the eclp_parallel_tests binary so the TSan configuration (ctest -L
// tsan) race-checks the same code paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/cache.hpp"
#include "graph/dimacs.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "support/parallel_for.hpp"

namespace eclp {
namespace {

std::string bytes_of(const graph::Csr& g) {
  std::stringstream ss;
  graph::write_binary(g, ss);
  return std::move(ss).str();
}

/// Restores the ingest configuration a test mutates. Every test in this
/// file runs with the cache disabled unless it explicitly enables one.
class IngestConfigGuard {
 public:
  IngestConfigGuard()
      : threads_(build_threads()),
        min_edges_(graph::parallel_build_min_edges()),
        cache_dir_(graph::cache_dir()) {
    graph::set_cache_dir("");
  }
  ~IngestConfigGuard() {
    set_build_threads(threads_);
    graph::set_parallel_build_min_edges(min_edges_);
    graph::set_cache_dir(cache_dir_);
  }

 private:
  u32 threads_;
  usize min_edges_;
  std::string cache_dir_;
};

/// A scratch cache directory, wiped on construction and destruction.
class ScratchCache {
 public:
  explicit ScratchCache(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir_);
    graph::set_cache_dir(dir_.string());
    graph::reset_cache_stats();
  }
  ~ScratchCache() {
    graph::set_cache_dir("");
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

// --- parallel_for ------------------------------------------------------------

TEST(ParallelFor, ChunkRangesPartitionTheTotal) {
  for (const u64 total : {1ull, 7ull, 64ull, 1000ull}) {
    for (const u64 chunks : {1ull, 2ull, 7ull, 64ull}) {
      u64 expected_begin = 0;
      for (u64 c = 0; c < chunks; ++c) {
        const auto [begin, end] = chunk_range(total, chunks, c);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(end - begin, total / chunks + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, total);
    }
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnceOnAPool) {
  Pool pool(7);
  constexpr u64 kTotal = 10007;
  std::vector<std::atomic<u32>> seen(kTotal);
  parallel_for_chunks(&pool, kTotal, 56, [&](u64, u64 begin, u64 end, u32) {
    for (u64 i = begin; i < end; ++i) seen[i].fetch_add(1);
  });
  for (u64 i = 0; i < kTotal; ++i) {
    ASSERT_EQ(seen[i].load(), 1u) << "index " << i;
  }
}

TEST(ParallelFor, RunsInlineWithoutAPool) {
  u64 sum = 0;  // no synchronization: must run on the calling thread
  parallel_for_chunks(nullptr, 100, 8, [&](u64, u64 begin, u64 end, u32) {
    for (u64 i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 4950u);
}

// --- parallel build ----------------------------------------------------------

/// Every suite input, built serially and with 2/7 ingest threads, must
/// serialize to identical bytes. The threshold is dropped to 1 so even the
/// tiny-scale graphs exercise the parallel pipeline (generators build
/// their CSRs through the same Builder, so this covers generator-internal
/// builds too).
TEST(ParallelBuild, ByteIdenticalAcrossThreadCountsForWholeSuite) {
  IngestConfigGuard guard;
  graph::set_parallel_build_min_edges(1);
  for (const auto* inputs : {&gen::general_inputs(), &gen::mesh_inputs()}) {
    for (const auto& spec : *inputs) {
      set_build_threads(1);
      const std::string reference = bytes_of(spec.make(gen::Scale::kTiny));
      for (const u32 threads : {2u, 7u}) {
        set_build_threads(threads);
        EXPECT_EQ(bytes_of(spec.make(gen::Scale::kTiny)), reference)
            << spec.name << " at " << threads << " build threads";
      }
    }
  }
}

/// Duplicate edges with distinct weights: the serial stable sort keeps the
/// first-inserted weight; the parallel pipeline must too.
TEST(ParallelBuild, KeepsFirstInsertedWeightForDuplicates) {
  IngestConfigGuard guard;
  graph::set_parallel_build_min_edges(1);
  graph::BuildOptions opt;
  opt.directed = true;
  opt.weighted = true;
  std::vector<graph::Edge> edges;
  // Many parallel edges spread over sources so chunks split between dupes.
  for (u32 rep = 0; rep < 50; ++rep) {
    for (vidx s = 0; s < 40; ++s) {
      edges.push_back({s, (s + rep) % 40, rep + 1});
      edges.push_back({s, (s * 7 + rep) % 40, 100 + rep});
    }
  }
  set_build_threads(1);
  const auto reference = bytes_of(graph::from_edges(40, edges, opt));
  for (const u32 threads : {2u, 7u}) {
    set_build_threads(threads);
    EXPECT_EQ(bytes_of(graph::from_edges(40, edges, opt)), reference)
        << threads << " build threads";
  }
}

TEST(ParallelBuild, NoDedupeAndSelfLoopOptionsMatchSerial) {
  IngestConfigGuard guard;
  graph::set_parallel_build_min_edges(1);
  std::vector<graph::Edge> edges;
  for (u32 i = 0; i < 5000; ++i) {
    edges.push_back({i % 97, (i * 13 + 5) % 97, i});
  }
  for (const bool dedupe : {true, false}) {
    for (const bool loops : {true, false}) {
      for (const bool directed : {true, false}) {
        graph::BuildOptions opt;
        opt.dedupe = dedupe;
        opt.remove_self_loops = loops;
        opt.directed = directed;
        opt.weighted = true;
        set_build_threads(1);
        const auto reference = bytes_of(graph::from_edges(97, edges, opt));
        set_build_threads(7);
        EXPECT_EQ(bytes_of(graph::from_edges(97, edges, opt)), reference)
            << "dedupe=" << dedupe << " loops=" << loops
            << " directed=" << directed;
      }
    }
  }
}

// --- chunk-parallel text parsing --------------------------------------------

/// Render a mid-sized graph in each text format and re-parse it at 1/2/7
/// ingest threads; all three parses must serialize identically (and equal
/// the original graph).
TEST(ChunkedParse, AllFormatsByteIdenticalAcrossThreadCounts) {
  IngestConfigGuard guard;
  graph::set_parallel_build_min_edges(1);

  const auto undirected = gen::uniform_random(1500, 6000, 9);
  const auto weighted = graph::with_random_weights(undirected, 17);

  struct Case {
    const char* name;
    std::string text;
    std::function<graph::Csr()> parse;
  };
  std::vector<Case> cases;
  {
    std::stringstream ss;
    graph::write_matrix_market(undirected, ss);
    const std::string text = ss.str();
    cases.push_back({"mtx", text, [text] {
                       return graph::parse_matrix_market(text);
                     }});
  }
  {
    std::stringstream ss;
    graph::write_edge_list(undirected, ss);
    const std::string text = ss.str();
    const vidx n = undirected.num_vertices();
    cases.push_back({"el", text, [text, n] {
                       return graph::parse_edge_list(text, false, n);
                     }});
  }
  {
    std::stringstream ss;
    graph::write_dimacs_sp(weighted, ss);
    const std::string text = ss.str();
    cases.push_back({"gr", text, [text] {
                       return graph::parse_dimacs_sp(text, true);
                     }});
  }
  {
    std::stringstream ss;
    graph::write_dimacs_col(undirected, ss);
    const std::string text = ss.str();
    cases.push_back({"col", text, [text] {
                       return graph::parse_dimacs_col(text);
                     }});
  }

  for (const Case& c : cases) {
    set_build_threads(1);
    const std::string reference = bytes_of(c.parse());
    for (const u32 threads : {2u, 7u}) {
      set_build_threads(threads);
      EXPECT_EQ(bytes_of(c.parse()), reference)
          << c.name << " at " << threads << " build threads";
    }
  }
  // The unweighted formats must reproduce the original graph exactly.
  set_build_threads(7);
  EXPECT_EQ(bytes_of(cases[0].parse()), bytes_of(undirected));  // mtx
  EXPECT_EQ(bytes_of(cases[1].parse()), bytes_of(undirected));  // el
}

TEST(ChunkedParse, MalformedLinesStillRejectedWhenParallel) {
  IngestConfigGuard guard;
  set_build_threads(7);
  // Enough valid lines that the bad one lands in a later chunk.
  std::string text;
  for (u32 i = 0; i < 5000; ++i) {
    text += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  }
  text += "4999 not-a-number\n";
  EXPECT_THROW(graph::parse_edge_list(text), CheckFailure);
}

// --- adversarial text layouts ------------------------------------------------

/// Rewrite rendered graph text into a hostile-but-legal layout: long
/// comment runs (lines far wider than the average data line, so chunk
/// boundaries land inside them and chunk_at_lines has to scan forward),
/// CRLF line endings, and no trailing newline on the final data line.
/// `comment` is the format's comment lead-in; `body_comments` is false for
/// Matrix Market, whose entry body may not contain comment lines.
std::string adversarial_layout(const std::string& text, char comment,
                               bool body_comments) {
  const std::string long_comment =
      std::string(1, comment) + " " + std::string(700, 'x');
  std::string out;
  out.reserve(text.size() * 2);
  usize line_no = 0;
  usize begin = 0;
  while (begin < text.size()) {
    usize end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    out.append(text, begin, end - begin);
    out += "\r\n";
    ++line_no;
    // A run of oversized comments after the first line (banner/header) and
    // periodically through the body when the format allows them there.
    if (line_no == 1 || (body_comments && line_no % 37 == 0)) {
      for (u32 r = 0; r < 3; ++r) out += long_comment + "\r\n";
    }
    begin = end + 1;
  }
  // Drop the final newline: the last line arrives unterminated.
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

/// Property test: random graphs rendered in all four text formats, then
/// re-serialized into adversarial layouts, must parse to byte-identical
/// CSRs at 1/2/7 ingest threads — and identical to the serial parse of the
/// pristine rendering (comments, CRLF, and missing trailing newlines are
/// presentation, not content).
TEST(ChunkedParse, AdversarialLayoutsMatchSerialPristineParse) {
  IngestConfigGuard guard;
  graph::set_parallel_build_min_edges(1);

  for (const u64 seed : {3u, 11u, 29u}) {
    const vidx n = 400 + static_cast<vidx>(seed) * 97;
    const auto undirected = gen::uniform_random(n, 4 * n, seed);
    const auto weighted = graph::with_random_weights(undirected, seed + 1);

    struct Case {
      const char* name;
      std::string pristine;
      char comment;
      bool body_comments;
      std::function<graph::Csr(const std::string&)> parse;
    };
    std::vector<Case> cases;
    {
      std::stringstream ss;
      graph::write_matrix_market(undirected, ss);
      cases.push_back({"mtx", ss.str(), '%', false, [](const std::string& t) {
                         return graph::parse_matrix_market(t);
                       }});
    }
    {
      std::stringstream ss;
      graph::write_edge_list(undirected, ss);
      cases.push_back({"el", ss.str(), '#', true, [n](const std::string& t) {
                         return graph::parse_edge_list(t, false, n);
                       }});
    }
    {
      std::stringstream ss;
      graph::write_dimacs_sp(weighted, ss);
      cases.push_back({"gr", ss.str(), 'c', true, [](const std::string& t) {
                         return graph::parse_dimacs_sp(t, true);
                       }});
    }
    {
      std::stringstream ss;
      graph::write_dimacs_col(undirected, ss);
      cases.push_back({"col", ss.str(), 'c', true, [](const std::string& t) {
                         return graph::parse_dimacs_col(t);
                       }});
    }

    for (const Case& c : cases) {
      const std::string hostile =
          adversarial_layout(c.pristine, c.comment, c.body_comments);
      ASSERT_NE(hostile, c.pristine);
      set_build_threads(1);
      const std::string reference = bytes_of(c.parse(c.pristine));
      EXPECT_EQ(bytes_of(c.parse(hostile)), reference)
          << c.name << " seed " << seed << " serial adversarial parse";
      for (const u32 threads : {2u, 7u}) {
        set_build_threads(threads);
        EXPECT_EQ(bytes_of(c.parse(hostile)), reference)
            << c.name << " seed " << seed << " at " << threads
            << " build threads";
      }
    }
  }
}

// --- content-addressed cache -------------------------------------------------

TEST(GraphCache, HitReturnsGraphEqualToFreshBuild) {
  IngestConfigGuard guard;
  ScratchCache cache("eclp_ingest_cache_hit");

  const auto g = gen::uniform_random(600, 2400, 3);
  const auto path = cache.dir() / "input.el";
  std::filesystem::create_directories(cache.dir());
  {
    std::ofstream os(path);
    graph::write_edge_list(g, os);
  }
  const auto cold = graph::load_any(path.string());
  auto stats = graph::cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 0u);

  const auto warm = graph::load_any(path.string());
  stats = graph::cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(bytes_of(cold), bytes_of(warm));
}

TEST(GraphCache, SuiteGenerationIsMemoized) {
  IngestConfigGuard guard;
  ScratchCache cache("eclp_ingest_cache_suite");

  const auto& spec = gen::find_input("rmat16.sym");
  const auto cold = spec.make(gen::Scale::kTiny);
  const auto warm = spec.make(gen::Scale::kTiny);
  const auto stats = graph::cache_stats();
  EXPECT_GE(stats.stores, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(bytes_of(cold), bytes_of(warm));
}

TEST(GraphCache, KeyDistinguishesDirectedness) {
  IngestConfigGuard guard;
  ScratchCache cache("eclp_ingest_cache_directed");

  const auto path = cache.dir() / "arcs.el";
  std::filesystem::create_directories(cache.dir());
  {
    std::ofstream os(path);
    os << "0 1\n1 2\n";
  }
  const auto undirected = graph::load_any(path.string(), false);
  const auto directed = graph::load_any(path.string(), true);
  EXPECT_FALSE(undirected.directed());
  EXPECT_TRUE(directed.directed());
  EXPECT_EQ(undirected.num_edges(), 4u);
  EXPECT_EQ(directed.num_edges(), 2u);
}

TEST(GraphCache, CorruptEntryFallsBackToRebuild) {
  IngestConfigGuard guard;
  ScratchCache cache("eclp_ingest_cache_corrupt");

  const auto path = cache.dir() / "input.el";
  std::filesystem::create_directories(cache.dir());
  const auto g = gen::uniform_random(200, 800, 11);
  {
    std::ofstream os(path);
    graph::write_edge_list(g, os);
  }
  const auto cold = graph::load_any(path.string());

  // Truncate every cached entry to garbage.
  u32 corrupted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(cache.dir())) {
    if (entry.path().extension() == ".eclg") {
      std::ofstream os(entry.path(), std::ios::binary | std::ios::trunc);
      os << "garbage";
      ++corrupted;
    }
  }
  ASSERT_GE(corrupted, 1u);

  const auto rebuilt = graph::load_any(path.string());
  EXPECT_EQ(bytes_of(cold), bytes_of(rebuilt));
  const auto stats = graph::cache_stats();
  EXPECT_GE(stats.corrupt, 1u);
  // The rebuild re-stored the entry, so a third load hits again.
  graph::load_any(path.string());
  EXPECT_GE(graph::cache_stats().hits, 1u);
}

/// The corrupt-store warning is deduplicated per *entry path*, not once
/// per process: a long-lived serving process that trips over two distinct
/// damaged entries must say so for each of them (while still not spamming
/// a warning per retry of the same entry).
TEST(GraphCache, WarnsOncePerCorruptEntryPathNotOncePerProcess) {
  IngestConfigGuard guard;
  ScratchCache cache("eclp_ingest_cache_warn_paths");

  const auto path_a = cache.dir() / "a.el";
  const auto path_b = cache.dir() / "b.el";
  std::filesystem::create_directories(cache.dir());
  {
    std::ofstream os(path_a);
    graph::write_edge_list(gen::uniform_random(100, 400, 1), os);
  }
  {
    std::ofstream os(path_b);
    graph::write_edge_list(gen::uniform_random(100, 400, 2), os);
  }
  graph::load_any(path_a.string());
  graph::load_any(path_b.string());

  const auto corrupt_all = [&] {
    for (const auto& entry :
         std::filesystem::directory_iterator(cache.dir())) {
      if (entry.path().extension() == ".eclg") {
        std::ofstream os(entry.path(), std::ios::binary | std::ios::trunc);
        os << "garbage";
      }
    }
  };

  graph::reset_cache_warnings();
  ASSERT_EQ(graph::cache_warned_paths(), 0u);

  corrupt_all();
  graph::load_any(path_a.string());
  EXPECT_EQ(graph::cache_warned_paths(), 1u);

  // Same entry corrupt again: already-warned, no second warning path.
  corrupt_all();
  graph::load_any(path_a.string());
  EXPECT_EQ(graph::cache_warned_paths(), 1u);

  // A *different* corrupt entry must still get its own warning.
  graph::load_any(path_b.string());
  EXPECT_EQ(graph::cache_warned_paths(), 2u);
  EXPECT_GE(graph::cache_stats().corrupt, 3u);
}

TEST(GraphCache, DisabledCacheTouchesNothing) {
  IngestConfigGuard guard;
  graph::set_cache_dir("");
  graph::reset_cache_stats();
  const auto& spec = gen::find_input("internet");
  spec.make(gen::Scale::kTiny);
  const auto stats = graph::cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.stores, 0u);
}

}  // namespace
}  // namespace eclp
