// The tentpole invariant of the block-parallel execution engine: for the
// same device seed, every modeled quantity — results, counters, per-block
// series, atomic-outcome tallies, modeled cycles — is bit-identical whether
// the simulator runs on 1 host thread or N. Each algorithm runs at 1/2/7
// sim-threads, in both deterministic and shuffled schedule modes, and every
// comparable field must match the 1-thread baseline exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "graph/transforms.hpp"
#include "sim/device.hpp"
#include "sim/pool.hpp"

namespace eclp {
namespace {

constexpr u32 kWorkerCounts[] = {1, 2, 7};
constexpr u64 kSeeds[] = {0, 12345};  // deterministic and shuffled schedules

/// Device-side fingerprint shared by all five algorithms: modeled cycles
/// plus the full atomic-outcome histogram.
struct DeviceDigest {
  u64 total_cycles = 0;
  u64 launches = 0;
  std::vector<u64> atomic_counts;

  bool operator==(const DeviceDigest&) const = default;
};

DeviceDigest digest(const sim::Device& dev) {
  DeviceDigest d;
  d.total_cycles = dev.total_cycles();
  d.launches = dev.kernel_launches();
  for (usize o = 0; o < static_cast<usize>(sim::AtomicOutcome::kCount_); ++o) {
    d.atomic_counts.push_back(
        dev.atomic_stats().count(static_cast<sim::AtomicOutcome>(o)));
  }
  return d;
}

/// Run `body(dev)` on a device with `workers` host threads and the given
/// seed; returns the device digest. `body` captures its own result fields.
template <typename Body>
DeviceDigest run_with_workers(u32 workers, u64 seed, Body&& body) {
  sim::Pool pool(workers);
  sim::Device dev(sim::CostModel{}, seed,
                  seed == 0 ? sim::ScheduleMode::kDeterministic
                            : sim::ScheduleMode::kShuffled);
  dev.set_pool(workers > 1 ? &pool : nullptr);
  body(dev);
  return digest(dev);
}

TEST(Determinism, EclCcBitIdenticalAcrossSimThreads) {
  const auto g = gen::rmat(11, 16000, 0.45, 0.22, 0.22, 5);
  for (const u64 seed : kSeeds) {
    algos::cc::Result base;
    DeviceDigest base_digest;
    for (const u32 workers : kWorkerCounts) {
      algos::cc::Result res;
      algos::cc::Options opt;
      opt.record_per_vertex_traversals = true;
      const auto d = run_with_workers(workers, seed, [&](sim::Device& dev) {
        res = algos::cc::run(dev, g, opt);
      });
      if (workers == 1) {
        base = std::move(res);
        base_digest = d;
        EXPECT_TRUE(algos::cc::verify(g, base.labels));
        continue;
      }
      EXPECT_EQ(res.labels, base.labels) << workers << " workers";
      EXPECT_EQ(res.modeled_cycles, base.modeled_cycles);
      EXPECT_EQ(res.init_cycles, base.init_cycles);
      EXPECT_EQ(res.init_traversal_per_vertex, base.init_traversal_per_vertex);
      EXPECT_EQ(res.profile.vertices_initialized,
                base.profile.vertices_initialized);
      EXPECT_EQ(res.profile.init_neighbors_traversed,
                base.profile.init_neighbors_traversed);
      EXPECT_EQ(res.profile.hook_attempts, base.profile.hook_attempts);
      EXPECT_EQ(res.profile.hook_cas_failure, base.profile.hook_cas_failure);
      EXPECT_EQ(d, base_digest) << workers << " workers, seed " << seed;
    }
  }
}

TEST(Determinism, EclGcBitIdenticalAcrossSimThreads) {
  const auto g = gen::uniform_random(3000, 12000, 9);
  for (const u64 seed : kSeeds) {
    algos::gc::Result base;
    DeviceDigest base_digest;
    for (const u32 workers : kWorkerCounts) {
      algos::gc::Result res;
      const auto d = run_with_workers(workers, seed, [&](sim::Device& dev) {
        res = algos::gc::run(dev, g);
      });
      if (workers == 1) {
        base = std::move(res);
        base_digest = d;
        EXPECT_TRUE(algos::gc::verify(g, base.colors));
        continue;
      }
      EXPECT_EQ(res.colors, base.colors) << workers << " workers";
      EXPECT_EQ(res.num_colors, base.num_colors);
      EXPECT_EQ(res.host_iterations, base.host_iterations);
      EXPECT_EQ(res.shortcut1_colorings, base.shortcut1_colorings);
      EXPECT_EQ(res.shortcut2_removals, base.shortcut2_removals);
      EXPECT_EQ(res.modeled_cycles, base.modeled_cycles);
      EXPECT_EQ(d, base_digest) << workers << " workers, seed " << seed;
    }
  }
}

TEST(Determinism, EclMisBitIdenticalAcrossSimThreads) {
  const auto g = gen::uniform_random(3000, 12000, 11);
  for (const u64 seed : kSeeds) {
    algos::mis::Result base;
    DeviceDigest base_digest;
    for (const u32 workers : kWorkerCounts) {
      algos::mis::Result res;
      const auto d = run_with_workers(workers, seed, [&](sim::Device& dev) {
        res = algos::mis::run(dev, g);
      });
      if (workers == 1) {
        base = std::move(res);
        base_digest = d;
        EXPECT_TRUE(algos::mis::verify(g, base.status));
        continue;
      }
      EXPECT_EQ(res.status, base.status) << workers << " workers";
      EXPECT_EQ(res.set_size, base.set_size);
      EXPECT_EQ(res.modeled_cycles, base.modeled_cycles);
      EXPECT_EQ(d, base_digest) << workers << " workers, seed " << seed;
    }
  }
}

TEST(Determinism, EclMstBitIdenticalAcrossSimThreads) {
  const auto g =
      graph::with_random_weights(gen::uniform_random(2500, 10000, 13), 13);
  for (const u64 seed : kSeeds) {
    algos::mst::Result base;
    DeviceDigest base_digest;
    for (const u32 workers : kWorkerCounts) {
      algos::mst::Result res;
      const auto d = run_with_workers(workers, seed, [&](sim::Device& dev) {
        res = algos::mst::run(dev, g);
      });
      if (workers == 1) {
        base = std::move(res);
        base_digest = d;
        EXPECT_TRUE(algos::mst::verify(g, base));
        continue;
      }
      EXPECT_EQ(res.in_mst, base.in_mst) << workers << " workers";
      EXPECT_EQ(res.total_weight, base.total_weight);
      EXPECT_EQ(res.mst_edges, base.mst_edges);
      EXPECT_EQ(res.modeled_cycles, base.modeled_cycles);
      EXPECT_EQ(d, base_digest) << workers << " workers, seed " << seed;
    }
  }
}

TEST(Determinism, EclSccBitIdenticalAcrossSimThreads) {
  const auto g = gen::cold_flow(48, 3);
  for (const u64 seed : kSeeds) {
    algos::scc::Result base;
    DeviceDigest base_digest;
    for (const u32 workers : kWorkerCounts) {
      algos::scc::Result res;
      algos::scc::Options opt;
      opt.record_series = true;
      const auto d = run_with_workers(workers, seed, [&](sim::Device& dev) {
        res = algos::scc::run(dev, g, opt);
      });
      if (workers == 1) {
        base = std::move(res);
        base_digest = d;
        EXPECT_TRUE(algos::scc::verify(g, base.scc_id));
        continue;
      }
      EXPECT_EQ(res.scc_id, base.scc_id) << workers << " workers";
      EXPECT_EQ(res.num_sccs, base.num_sccs);
      EXPECT_EQ(res.outer_iterations, base.outer_iterations);
      EXPECT_EQ(res.inner_per_outer, base.inner_per_outer);
      EXPECT_EQ(res.trimmed_vertices, base.trimmed_vertices);
      EXPECT_EQ(res.modeled_cycles, base.modeled_cycles);
      // The per-block update series is the paper's Figure 1 input; its CSV
      // rendering covers every (outer, inner, block, value) tuple.
      EXPECT_EQ(res.series.to_csv(), base.series.to_csv());
      EXPECT_EQ(d, base_digest) << workers << " workers, seed " << seed;
    }
  }
}

/// The process-wide configuration path (ECLP_SIM_THREADS / --sim-threads →
/// set_sim_threads → shared_pool → Device ctor) must deliver the same
/// bit-identity as test-local pool injection.
TEST(Determinism, SharedPoolConfigurationMatchesInjectedPool) {
  const auto g = gen::cold_flow(24, 3);
  const u32 before = sim::sim_threads();

  sim::set_sim_threads(1);
  sim::Device dev1;
  const auto res1 = algos::scc::run(dev1, g);
  const auto digest1 = digest(dev1);

  sim::set_sim_threads(7);
  sim::Device dev7;
  EXPECT_EQ(dev7.workers(), 7u);
  const auto res7 = algos::scc::run(dev7, g);
  const auto digest7 = digest(dev7);

  sim::set_sim_threads(before == 0 ? 1 : before);

  EXPECT_EQ(res7.scc_id, res1.scc_id);
  EXPECT_EQ(res7.modeled_cycles, res1.modeled_cycles);
  EXPECT_EQ(digest7, digest1);
}

}  // namespace
}  // namespace eclp
