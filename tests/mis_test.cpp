#include <gtest/gtest.h>

#include "algos/common.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"

namespace eclp::algos::mis {
namespace {

using graph::from_edges;

TEST(EclMis, TriangleSelectsExactlyOne) {
  sim::Device dev;
  const auto g = from_edges(3, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.status));
  EXPECT_EQ(res.set_size, 1u);
}

TEST(EclMis, IsolatedVerticesAllIn) {
  sim::Device dev;
  const auto g = from_edges(5, {});
  const auto res = run(dev, g);
  EXPECT_EQ(res.set_size, 5u);
  EXPECT_TRUE(verify(g, res.status));
}

TEST(EclMis, StarSelectsLeavesNotCenter) {
  sim::Device dev;
  // Low-degree priority: leaves beat the center.
  const auto g =
      from_edges(6, {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}, {0, 5, 0}});
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.status));
  EXPECT_EQ(res.status[0], kOut);
  EXPECT_EQ(res.set_size, 5u);
}

TEST(EclMis, PriorityByteFavorsLowDegree) {
  // Across degree bands the byte must not increase with degree.
  const u8 p_low = priority_byte(1, 1);
  const u8 p_mid = priority_byte(1, 100);
  const u8 p_high = priority_byte(1, 100000);
  EXPECT_GT(p_low, p_mid);
  EXPECT_GT(p_mid, p_high);
}

TEST(EclMis, PriorityByteStaysInUndecidedRange) {
  for (vidx v = 0; v < 2000; ++v) {
    const u8 p = priority_byte(v, v % 1000);
    EXPECT_GE(p, kUndecidedBase);
    EXPECT_LE(p, kUndecidedTop);
  }
}

TEST(EclMis, MetricsAccounting) {
  sim::Device dev;
  const auto g = gen::uniform_random(5000, 15000, 21);
  const auto res = run(dev, g);
  // Assigned vertices partition the graph.
  EXPECT_EQ(static_cast<u64>(res.metrics.vertices_assigned.total),
            g.num_vertices());
  // Finalized = MIS members.
  EXPECT_EQ(static_cast<u64>(res.metrics.vertices_finalized.total),
            res.set_size);
  // Iterations: every thread runs at least one.
  EXPECT_GE(res.metrics.iterations.min, 1.0);
  EXPECT_GE(res.metrics.iterations.max, res.metrics.iterations.mean);
}

TEST(EclMis, RoundRobinBalancesAssignment) {
  sim::Device dev;
  const auto g = gen::grid2d_torus(64);
  const auto res = run(dev, g);
  EXPECT_LE(res.metrics.vertices_assigned.max -
                res.metrics.vertices_assigned.min,
            1.0);
}

TEST(EclMis, BothVisibilityModesAreCorrect) {
  const auto g = gen::preferential_attachment(4000, 5, 5);
  for (const auto vis : {Visibility::kImmediate, Visibility::kRoundSnapshot}) {
    sim::Device dev;
    Options opt;
    opt.visibility = vis;
    const auto res = run(dev, g, opt);
    EXPECT_TRUE(verify(g, res.status));
  }
}

TEST(EclMis, SnapshotModeTakesMoreIterations) {
  const auto g = gen::uniform_random(20000, 80000, 8);
  sim::Device d1, d2;
  Options immediate;
  immediate.visibility = Visibility::kImmediate;
  Options snapshot;  // default: kRoundSnapshot with pacing
  const auto a = run(d1, g, immediate);
  const auto b = run(d2, g, snapshot);
  EXPECT_GT(b.metrics.iterations.mean, a.metrics.iterations.mean);
}

TEST(EclMis, DeterministicUnderDeterministicSchedule) {
  const auto g = gen::rmat(12, 16000, 0.45, 0.22, 0.22, 12);
  sim::Device d1, d2;
  const auto a = run(d1, g);
  const auto b = run(d2, g);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.metrics.iterations.mean, b.metrics.iterations.mean);
  EXPECT_EQ(a.modeled_cycles, b.modeled_cycles);
}

TEST(EclMis, ShuffledSeedsVaryInternalsButStayValid) {
  // The paper's Table 3: run-to-run iteration counts differ slightly while
  // the result remains a valid MIS.
  const auto g = gen::preferential_attachment(8000, 6, 77);
  std::vector<double> means;
  for (const u64 seed : {11ull, 22ull, 33ull}) {
    sim::Device dev({}, seed, sim::ScheduleMode::kShuffled);
    const auto res = run(dev, g);
    EXPECT_TRUE(verify(g, res.status)) << "seed " << seed;
    means.push_back(res.metrics.iterations.mean);
  }
  // Not all three runs should coincide exactly.
  EXPECT_FALSE(means[0] == means[1] && means[1] == means[2]);
}

TEST(EclMis, SameSeedReproducesShuffledRun) {
  const auto g = gen::uniform_random(6000, 18000, 9);
  sim::Device d1({}, 123, sim::ScheduleMode::kShuffled);
  sim::Device d2({}, 123, sim::ScheduleMode::kShuffled);
  const auto a = run(d1, g);
  const auto b = run(d2, g);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.metrics.iterations.max, b.metrics.iterations.max);
}

TEST(EclMis, SetSizeComparableToGreedy) {
  // The degree-aware priority should produce sets at least as large as
  // id-order greedy on power-law inputs (that is its purpose).
  const auto g = gen::internet_topology(20000, 41);
  sim::Device dev;
  const auto res = run(dev, g);
  const auto greedy = reference_greedy(g);
  const usize greedy_size = static_cast<usize>(
      std::count(greedy.begin(), greedy.end(), kIn));
  EXPECT_GE(res.set_size, greedy_size * 95 / 100);
}

TEST(EclMis, VerifyRejectsNonIndependentSet) {
  const auto g = from_edges(2, {{0, 1, 0}});
  std::vector<u8> bad = {kIn, kIn};
  EXPECT_FALSE(verify(g, bad));
}

TEST(EclMis, VerifyRejectsNonMaximalSet) {
  const auto g = from_edges(3, {{0, 1, 0}});
  std::vector<u8> bad = {kIn, kOut, kOut};  // vertex 2 could join
  EXPECT_FALSE(verify(g, bad));
}

TEST(EclMis, VerifyRejectsUndecided) {
  const auto g = from_edges(2, {{0, 1, 0}});
  std::vector<u8> bad = {kIn, 100};
  EXPECT_FALSE(verify(g, bad));
}

class MisSuiteTest : public ::testing::TestWithParam<usize> {};

TEST_P(MisSuiteTest, ValidOnSuiteInput) {
  const auto& spec = gen::general_inputs()[GetParam()];
  const auto g = spec.make(gen::Scale::kTiny);
  sim::Device dev;
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.status)) << spec.name;
  EXPECT_GT(res.set_size, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, MisSuiteTest,
                         ::testing::Range<usize>(0, 17));

TEST(EclMis, PacingDisabledStillValid) {
  const auto g = gen::grid2d_torus(48);
  sim::Device dev;
  Options opt;
  opt.quantum = 0;
  const auto res = run(dev, g, opt);
  EXPECT_TRUE(verify(g, res.status));
}

TEST(EclMis, SmallGridUsesFewThreadsGracefully) {
  sim::Device dev;
  Options opt;
  opt.blocks = 1;
  opt.threads_per_block = 32;
  const auto g = gen::uniform_random(2000, 5000, 2);
  const auto res = run(dev, g, opt);
  EXPECT_TRUE(verify(g, res.status));
  EXPECT_GT(res.metrics.vertices_assigned.mean, 50.0);
}

}  // namespace
}  // namespace eclp::algos::mis
