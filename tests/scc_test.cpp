#include <gtest/gtest.h>

#include "algos/common.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/transforms.hpp"

namespace eclp::algos::scc {
namespace {

graph::Csr directed(vidx n, const std::vector<graph::Edge>& edges) {
  graph::BuildOptions opt;
  opt.directed = true;
  return graph::from_edges(n, edges, opt);
}

TEST(EclScc, SingleCycleIsOneScc) {
  sim::Device dev;
  const auto g = directed(5, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0},
                              {4, 0, 0}});
  const auto res = run(dev, g);
  EXPECT_EQ(res.num_sccs, 1u);
  EXPECT_TRUE(verify(g, res.scc_id));
}

TEST(EclScc, ChainIsAllSingletons) {
  sim::Device dev;
  const auto g = directed(5, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}});
  const auto res = run(dev, g);
  EXPECT_EQ(res.num_sccs, 5u);
  EXPECT_TRUE(verify(g, res.scc_id));
}

TEST(EclScc, TwoCyclesLinkedOneWay) {
  sim::Device dev;
  const auto g = directed(6, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0},   // cycle A
                              {3, 4, 0}, {4, 5, 0}, {5, 3, 0},   // cycle B
                              {2, 3, 0}});                       // A -> B
  const auto res = run(dev, g);
  EXPECT_EQ(res.num_sccs, 2u);
  EXPECT_TRUE(verify(g, res.scc_id));
  EXPECT_EQ(res.scc_id[0], res.scc_id[2]);
  EXPECT_NE(res.scc_id[0], res.scc_id[3]);
}

TEST(EclScc, EmptyEdgeSetAllSingletons) {
  sim::Device dev;
  const auto g = directed(4, {});
  const auto res = run(dev, g);
  EXPECT_EQ(res.num_sccs, 4u);
  EXPECT_TRUE(verify(g, res.scc_id));
}

TEST(EclScc, RejectsUndirectedGraph) {
  sim::Device dev;
  const auto g = graph::from_edges(3, {{0, 1, 0}});
  EXPECT_THROW(run(dev, g), CheckFailure);
}

TEST(TarjanReference, MatchesKnownPartition) {
  const auto g = directed(8, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0},
                              {3, 4, 0}, {4, 3, 0},
                              {2, 3, 0}, {5, 6, 0}});
  const auto scc = reference_scc(g);
  EXPECT_EQ(scc[0], scc[1]);
  EXPECT_EQ(scc[1], scc[2]);
  EXPECT_EQ(scc[3], scc[4]);
  EXPECT_NE(scc[0], scc[3]);
  EXPECT_NE(scc[5], scc[6]);
  EXPECT_NE(scc[6], scc[7]);
}

TEST(EclScc, RandomDirectedGraphsMatchTarjan) {
  for (const u64 seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    Rng rng(seed);
    std::vector<graph::Edge> edges;
    const vidx n = 300;
    for (int e = 0; e < 900; ++e) {
      edges.push_back({static_cast<vidx>(rng.below(n)),
                       static_cast<vidx>(rng.below(n)), 0});
    }
    const auto g = directed(n, edges);
    sim::Device dev;
    const auto res = run(dev, g);
    EXPECT_TRUE(verify(g, res.scc_id)) << "seed " << seed;
  }
}

TEST(EclScc, SparseRandomDigraphsMatchTarjan) {
  // Sparse digraphs have many nontrivial medium SCCs — the harder regime.
  for (const u64 seed : {7ull, 8ull, 9ull}) {
    Rng rng(seed);
    std::vector<graph::Edge> edges;
    const vidx n = 1000;
    for (int e = 0; e < 1200; ++e) {
      edges.push_back({static_cast<vidx>(rng.below(n)),
                       static_cast<vidx>(rng.below(n)), 0});
    }
    const auto g = directed(n, edges);
    sim::Device dev;
    EXPECT_TRUE(verify(g, run(dev, g).scc_id)) << "seed " << seed;
  }
}

class SccMeshTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SccMeshTest, MatchesTarjanOnMesh) {
  const auto& spec = gen::find_input(GetParam());
  const auto g = spec.make(gen::Scale::kTiny);
  sim::Device dev;
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.scc_id)) << spec.name;
  EXPECT_GT(res.outer_iterations, 0u);
}

TEST_P(SccMeshTest, BlockSizeDoesNotChangePartition) {
  const auto& spec = gen::find_input(GetParam());
  const auto g = spec.make(gen::Scale::kTiny);
  std::vector<vidx> first;
  for (const u32 tpb : {64u, 256u, 1024u}) {
    sim::Device dev;
    Options opt;
    opt.threads_per_block = tpb;
    auto ids = normalize_labels(run(dev, g, opt).scc_id);
    if (first.empty()) {
      first = std::move(ids);
    } else {
      EXPECT_EQ(first, ids) << spec.name << " tpb " << tpb;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeshes, SccMeshTest,
                         ::testing::Values("toroid-wedge", "star",
                                           "toroid-hex", "cold-flow",
                                           "klein-bottle"));

TEST(EclScc, SeriesRecordsEveryPropagationLaunch) {
  const auto g = gen::star_mesh(24, 60, 3);
  sim::Device dev;
  Options opt;
  opt.record_series = true;
  const auto res = run(dev, g, opt);
  // One snapshot per (m, n) pair, n summed over outer rounds.
  u64 total_launches = 0;
  for (const u32 n : res.inner_per_outer) total_launches += n;
  EXPECT_EQ(res.series.size(), total_launches);
  EXPECT_EQ(res.series.max_outer(), res.outer_iterations);
  // Every snapshot covers all blocks of the propagation grid.
  for (const auto& snap : res.series.snapshots()) {
    EXPECT_EQ(snap.per_block.size(), res.series.snapshots()[0].per_block.size());
  }
}

TEST(EclScc, UpdatesDiminishAcrossPropagationIterations) {
  // Paper Figure 1: updates start high and decay, with more inactive blocks
  // in later iterations.
  const auto g = gen::star_mesh(32, 100, 5);
  sim::Device dev;
  Options opt;
  opt.record_series = true;
  const auto res = run(dev, g, opt);
  const auto* first = res.series.find(1, 1);
  ASSERT_NE(first, nullptr);
  const u64 n_max = res.series.max_inner(1);
  ASSERT_GT(n_max, 2u);
  const auto* late = res.series.find(1, n_max - 1);
  ASSERT_NE(late, nullptr);
  const auto sum = [](const profile::BlockSeries::Snapshot& s) {
    u64 t = 0;
    for (const u64 v : s.per_block) t += v;
    return t;
  };
  EXPECT_GT(sum(*first), sum(*late));
  const auto active = [](const profile::BlockSeries::Snapshot& s) {
    usize a = 0;
    for (const u64 v : s.per_block) a += (v > 0);
    return a;
  };
  EXPECT_GE(active(*first), active(*late));
}

TEST(EclScc, SeriesOffByDefault) {
  const auto g = gen::star_mesh(10, 30, 1);
  sim::Device dev;
  EXPECT_EQ(run(dev, g).series.size(), 0u);
}

TEST(EclScc, DeterministicAcrossRuns) {
  const auto g = gen::toroid_wedge(24, 2);
  sim::Device d1, d2;
  const auto a = run(d1, g);
  const auto b = run(d2, g);
  EXPECT_EQ(a.scc_id, b.scc_id);
  EXPECT_EQ(a.modeled_cycles, b.modeled_cycles);
  EXPECT_EQ(a.inner_per_outer, b.inner_per_outer);
}

TEST(EclScc, EdgesPerThreadVariantsAgree) {
  const auto g = gen::cold_flow(32, 4);
  std::vector<vidx> first;
  for (const u32 ept : {1u, 4u, 16u}) {
    sim::Device dev;
    Options opt;
    opt.edges_per_thread = ept;
    auto ids = normalize_labels(run(dev, g, opt).scc_id);
    if (first.empty()) {
      first = std::move(ids);
    } else {
      EXPECT_EQ(first, ids) << "ept " << ept;
    }
  }
}

TEST(EclScc, StarMeshTakesMultipleOuterRounds) {
  const auto g = gen::star_mesh(150, 120, 6);
  sim::Device dev;
  const auto res = run(dev, g);
  // The permuted-chain construction forces record-based peeling (paper: m
  // reached 10 on star).
  EXPECT_GE(res.outer_iterations, 4u);
  EXPECT_TRUE(verify(g, res.scc_id));
}

}  // namespace
}  // namespace eclp::algos::scc
