#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "profile/conflict.hpp"
#include "profile/counters.hpp"
#include "profile/registry.hpp"
#include "profile/series.hpp"
#include "support/worker.hpp"

namespace eclp::profile {
namespace {

// --- counters ------------------------------------------------------------------

TEST(GlobalCounter, AccumulatesAndResets) {
  GlobalCounter c;
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.total(), 42u);
  EXPECT_EQ(c.kind(), "global");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GlobalCounter, SummaryIsSingleton) {
  GlobalCounter c;
  c.inc(7);
  const auto s = c.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(BucketCounters, KindStrings) {
  EXPECT_EQ(PerThreadCounter(4).kind(), "per-thread");
  EXPECT_EQ(PerBlockCounter(4).kind(), "per-block");
  EXPECT_EQ(PerVertexCounter(4).kind(), "per-vertex");
}

TEST(BucketCounter, PerBucketAccumulation) {
  PerThreadCounter c(4);
  c.inc(0);
  c.inc(0);
  c.inc(3, 10);
  EXPECT_EQ(c.at(0), 2u);
  EXPECT_EQ(c.at(1), 0u);
  EXPECT_EQ(c.at(3), 10u);
  EXPECT_EQ(c.total(), 12u);
  const auto s = c.summary();
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(BucketCounter, OutOfRangeBucketThrows) {
  PerBlockCounter c(2);
  EXPECT_THROW(c.inc(2), CheckFailure);
}

TEST(BucketCounter, ResizeZeroes) {
  PerVertexCounter c(2);
  c.inc(1, 5);
  c.resize(8);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.total(), 0u);
}

TEST(BucketCounter, ResetKeepsSize) {
  PerThreadCounter c(3);
  c.inc(2, 9);
  c.reset();
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.total(), 0u);
}

// --- registry -------------------------------------------------------------------

TEST(Registry, MakeReturnsSameInstance) {
  CounterRegistry reg;
  auto& a = reg.make<GlobalCounter>("hits");
  a.inc(5);
  auto& b = reg.make<GlobalCounter>("hits");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, TypeMismatchThrows) {
  CounterRegistry reg;
  reg.make<GlobalCounter>("x");
  EXPECT_THROW(reg.make<PerThreadCounter>("x", 4), CheckFailure);
}

TEST(Registry, GetUnknownThrows) {
  CounterRegistry reg;
  EXPECT_THROW(reg.get("nope"), CheckFailure);
}

TEST(Registry, ResetAllClearsEverything) {
  CounterRegistry reg;
  reg.make<GlobalCounter>("a").inc(3);
  reg.make<PerThreadCounter>("b", 2).inc(1, 4);
  reg.reset_all();
  EXPECT_EQ(reg.get("a").total(), 0u);
  EXPECT_EQ(reg.get("b").total(), 0u);
}

TEST(Registry, ReportListsAllCounters) {
  CounterRegistry reg;
  reg.make<GlobalCounter>("alpha").inc(10);
  reg.make<PerThreadCounter>("beta", 4).inc(0, 2);
  const auto t = reg.report("title");
  EXPECT_EQ(t.rows(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("per-thread"), std::string::npos);
}

// --- series ---------------------------------------------------------------------

TEST(IterationSeries, ColumnsAndRows) {
  IterationSeries s({"work", "conflicts"});
  s.add_row("Regular 1", {90.0, 12.0});
  s.add_row("Regular 2", {40.0, 6.0});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s.value(1, 0), 40.0);
  const auto col = s.column("conflicts");
  EXPECT_EQ(col, (std::vector<double>{12.0, 6.0}));
  EXPECT_THROW(s.column("nope"), CheckFailure);
}

TEST(IterationSeries, ArityEnforced) {
  IterationSeries s({"a"});
  EXPECT_THROW(s.add_row("x", {1.0, 2.0}), CheckFailure);
}

TEST(IterationSeries, TableRendering) {
  IterationSeries s({"pct"});
  s.add_row("Filter 1", {33.333});
  const auto t = s.to_table("mst metrics", 1);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("Filter 1"), std::string::npos);
  EXPECT_NE(text.find("33.3"), std::string::npos);
}

TEST(BlockSeries, RecordAndFind) {
  BlockSeries s;
  s.record(1, 1, {70, 68, 71});
  s.record(1, 2, {10, 0, 3});
  s.record(2, 1, {5, 0, 0});
  EXPECT_EQ(s.size(), 3u);
  ASSERT_NE(s.find(1, 2), nullptr);
  EXPECT_EQ(s.find(1, 2)->per_block[0], 10u);
  EXPECT_EQ(s.find(3, 1), nullptr);
  EXPECT_EQ(s.max_inner(1), 2u);
  EXPECT_EQ(s.max_inner(2), 1u);
  EXPECT_EQ(s.max_outer(), 2u);
}

TEST(BlockSeries, TableCountsActiveBlocks) {
  BlockSeries s;
  s.record(1, 1, {3, 0, 0, 9});
  const auto t = s.to_table("scc updates");
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0)[2], "2");  // active blocks
  EXPECT_EQ(t.row(0)[3], "4");  // total blocks
}

TEST(BlockSeries, CsvHasOneLinePerBlock) {
  BlockSeries s;
  s.record(1, 1, {1, 2});
  s.record(1, 2, {0, 4});
  const std::string csv = s.to_csv();
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 5);
  EXPECT_NE(csv.find("1,2,1,4"), std::string::npos);
}

// --- golden files -----------------------------------------------------------------
// The report/CSV emitters feed the bench artifacts the paper tables are
// read from; pin their exact rendering against checked-in goldens so
// format drift is a deliberate decision, not an accident. Regenerate with
//   ECLP_UPDATE_GOLDEN=1 ctest -R Golden
// (ECLP_GOLDEN_DIR points at tests/golden/ in the source tree.)

void expect_matches_golden(const std::string& name,
                           const std::string& actual) {
  const std::string path = std::string(ECLP_GOLDEN_DIR) + "/" + name;
  if (std::getenv("ECLP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << actual;
    GTEST_SKIP() << "updated golden " << path;
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "missing golden " << path
                         << " (regenerate with ECLP_UPDATE_GOLDEN=1)";
  std::stringstream expected;
  expected << is.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "golden mismatch: " << path;
}

/// A registry with one counter of every granularity and fixed values —
/// including increments from a nonzero worker slot, which must be invisible
/// in the rendered output (shards consolidate on read).
CounterRegistry golden_registry() {
  CounterRegistry reg;
  auto& global = reg.make<GlobalCounter>("atomics_useless");
  auto& per_thread = reg.make<PerThreadCounter>("iterations", 4);
  auto& per_block = reg.make<PerBlockCounter>("updates", 3);
  auto& per_vertex = reg.make<PerVertexCounter>("visits", 5);
  global.inc(41);
  per_thread.inc(0, 2);
  per_thread.inc(2, 7);
  per_block.inc(1, 5);
  per_vertex.inc(0);
  per_vertex.inc(4, 3);
  set_current_worker_slot(2);
  global.inc(1);
  per_thread.inc(3, 1);
  per_block.inc(1, 5);
  per_vertex.inc(4, 2);
  set_current_worker_slot(0);
  return reg;
}

TEST(Golden, RegistryReportText) {
  expect_matches_golden("registry_report.txt",
                        golden_registry().report("profiling counters")
                            .to_text());
}

TEST(Golden, RegistryReportCsv) {
  expect_matches_golden("registry_report.csv",
                        golden_registry().report("profiling counters")
                            .to_csv());
}

BlockSeries golden_series() {
  BlockSeries s;
  s.record(1, 1, {70, 68, 71, 0});
  s.record(1, 2, {10, 0, 3, 0});
  s.record(2, 1, {5, 0, 0, 2});
  return s;
}

TEST(Golden, BlockSeriesCsv) {
  expect_matches_golden("block_series.csv", golden_series().to_csv());
}

TEST(Golden, BlockSeriesTableText) {
  expect_matches_golden("block_series_table.txt",
                        golden_series().to_table("scc updates").to_text());
}

// --- conflict tracker ------------------------------------------------------------

TEST(ConflictTracker, NoConflictsWhenLocationsDistinct) {
  ConflictTracker t;
  t.record(1, 100);
  t.record(2, 101);
  EXPECT_EQ(t.attempting_threads(), 2u);
  EXPECT_EQ(t.conflicting_threads(), 0u);
  EXPECT_EQ(t.contended_locations(), 0u);
}

TEST(ConflictTracker, SharedLocationConflictsAllParticipants) {
  ConflictTracker t;
  t.record(7, 1);
  t.record(7, 2);
  t.record(7, 3);
  t.record(9, 4);
  EXPECT_EQ(t.conflicting_threads(), 3u);
  EXPECT_EQ(t.contended_locations(), 1u);
  EXPECT_EQ(t.attempting_threads(), 4u);
}

TEST(ConflictTracker, RepeatedAttemptsBySameThreadDontConflict) {
  ConflictTracker t;
  t.record(5, 1);
  t.record(5, 1);  // same thread hammering one location
  EXPECT_EQ(t.conflicting_threads(), 0u);
  EXPECT_EQ(t.num_events(), 2u);
}

TEST(ConflictTracker, ThreadCountedOnceAcrossLocations) {
  ConflictTracker t;
  t.record(1, 10);
  t.record(1, 11);
  t.record(2, 10);
  t.record(2, 12);
  EXPECT_EQ(t.conflicting_threads(), 3u);  // 10, 11, 12
  EXPECT_EQ(t.contended_locations(), 2u);
}

TEST(ConflictTracker, ResetClears) {
  ConflictTracker t;
  t.record(1, 1);
  t.record(1, 2);
  t.reset();
  EXPECT_EQ(t.num_events(), 0u);
  EXPECT_EQ(t.conflicting_threads(), 0u);
}

}  // namespace
}  // namespace eclp::profile
