#include <gtest/gtest.h>

#include <set>

#include "sim/device.hpp"

namespace eclp::sim {
namespace {

// --- launch geometry -----------------------------------------------------------

TEST(Device, LaunchRunsEveryThreadOnce) {
  Device dev;
  LaunchConfig cfg{4, 32};
  std::vector<int> hits(cfg.total_threads(), 0);
  dev.launch("t", cfg, [&](ThreadCtx& ctx) { hits[ctx.global_id()]++; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Device, ThreadIdsAreConsistent) {
  Device dev;
  LaunchConfig cfg{3, 8};
  dev.launch("t", cfg, [&](ThreadCtx& ctx) {
    EXPECT_EQ(ctx.global_id(), ctx.block_idx() * 8 + ctx.thread_idx());
    EXPECT_EQ(ctx.block_dim(), 8u);
    EXPECT_EQ(ctx.grid_dim(), 3u);
    EXPECT_EQ(ctx.grid_size(), 24u);
    EXPECT_LT(ctx.block_idx(), 3u);
    EXPECT_LT(ctx.thread_idx(), 8u);
  });
}

TEST(Device, ZeroBlocksRejected) {
  Device dev;
  EXPECT_THROW(dev.launch("t", {0, 32}, [](ThreadCtx&) {}), CheckFailure);
}

TEST(Device, ShuffledLaunchVisitsAllThreads) {
  Device dev({}, 42, ScheduleMode::kShuffled);
  LaunchConfig cfg{2, 16};
  std::set<u32> seen;
  dev.launch("t", cfg, [&](ThreadCtx& ctx) { seen.insert(ctx.global_id()); });
  EXPECT_EQ(seen.size(), 32u);
}

TEST(Device, ShuffledOrderDependsOnSeedOnly) {
  const auto order_for = [](u64 seed) {
    Device dev({}, seed, ScheduleMode::kShuffled);
    std::vector<u32> order;
    dev.launch("t", {1, 64},
               [&](ThreadCtx& ctx) { order.push_back(ctx.global_id()); });
    return order;
  };
  EXPECT_EQ(order_for(1), order_for(1));
  EXPECT_NE(order_for(1), order_for(2));
}

// --- cost model -----------------------------------------------------------------

TEST(CostModel, LaunchOverheadAlwaysCharged) {
  CostModel cm;
  Device dev(cm);
  dev.launch("empty", {1, 1}, [](ThreadCtx&) {});
  EXPECT_GE(dev.total_cycles(), cm.launch_overhead);
  EXPECT_EQ(dev.kernel_launches(), 1u);
}

TEST(CostModel, WorkScalesCycles) {
  CostModel cm;
  Device light(cm), heavy(cm);
  light.launch("l", {4, 64}, [](ThreadCtx& ctx) { ctx.charge_alu(10); });
  heavy.launch("h", {4, 64}, [](ThreadCtx& ctx) { ctx.charge_alu(10000); });
  EXPECT_GT(heavy.total_cycles(), light.total_cycles());
}

TEST(CostModel, IdenticalRunsGiveIdenticalCycles) {
  const auto run_once = [] {
    Device dev;
    dev.launch("k", {8, 32}, [](ThreadCtx& ctx) {
      ctx.charge_reads(3);
      ctx.charge_writes(1);
    });
    return dev.total_cycles();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(CostModel, HostOpCharges) {
  CostModel cm;
  Device dev(cm);
  dev.host_op(3);
  EXPECT_EQ(dev.total_cycles(), 3 * cm.host_op);
}

TEST(CostModel, ResetCyclesZeroes) {
  Device dev;
  dev.host_op();
  dev.reset_cycles();
  EXPECT_EQ(dev.total_cycles(), 0u);
}

TEST(CostModel, MoreBlocksCostMoreOverhead) {
  CostModel cm;
  Device few(cm), many(cm);
  // Same total work, different granularity: more blocks -> more block
  // scheduling overhead.
  few.launch("f", {1, 256}, [](ThreadCtx& ctx) { ctx.charge_alu(1); });
  many.launch("m", {256, 1}, [](ThreadCtx& ctx) { ctx.charge_alu(1); });
  EXPECT_GT(many.total_cycles(), few.total_cycles());
}

// --- atomics ---------------------------------------------------------------------

TEST(Atomics, CasSuccessAndFailureOutcomes) {
  Device dev;
  u32 target = 5;
  dev.launch("t", {1, 1}, [&](ThreadCtx& ctx) {
    EXPECT_EQ(ctx.atomic_cas(target, 5u, 9u), 5u);  // success
    EXPECT_EQ(target, 9u);
    EXPECT_EQ(ctx.atomic_cas(target, 5u, 7u), 9u);  // failure
    EXPECT_EQ(target, 9u);
  });
  EXPECT_EQ(dev.atomic_stats().count(AtomicOutcome::kCasSuccess), 1u);
  EXPECT_EQ(dev.atomic_stats().count(AtomicOutcome::kCasFailure), 1u);
  EXPECT_DOUBLE_EQ(dev.atomic_stats().cas_failure_rate(), 0.5);
}

TEST(Atomics, MinMaxEffectiveness) {
  Device dev;
  u32 lo = 10, hi = 10;
  dev.launch("t", {1, 1}, [&](ThreadCtx& ctx) {
    EXPECT_TRUE(ctx.atomic_min(lo, 3u));
    EXPECT_FALSE(ctx.atomic_min(lo, 8u));  // ineffective
    EXPECT_TRUE(ctx.atomic_max(hi, 20u));
    EXPECT_FALSE(ctx.atomic_max(hi, 1u));  // ineffective
  });
  EXPECT_EQ(lo, 3u);
  EXPECT_EQ(hi, 20u);
  const auto& st = dev.atomic_stats();
  EXPECT_EQ(st.count(AtomicOutcome::kMinEffective), 1u);
  EXPECT_EQ(st.count(AtomicOutcome::kMinIneffective), 1u);
  EXPECT_EQ(st.count(AtomicOutcome::kMaxEffective), 1u);
  EXPECT_EQ(st.count(AtomicOutcome::kMaxIneffective), 1u);
  EXPECT_DOUBLE_EQ(st.min_ineffective_rate(), 0.5);
}

TEST(Atomics, AddReturnsOldValueAndAccumulates) {
  Device dev;
  u64 counter = 0;
  dev.launch("t", {2, 32}, [&](ThreadCtx& ctx) {
    ctx.atomic_add(counter, 1u);
  });
  EXPECT_EQ(counter, 64u);
}

TEST(Atomics, StatsResettable) {
  Device dev;
  u32 x = 0;
  dev.launch("t", {1, 1},
             [&](ThreadCtx& ctx) { ctx.atomic_min(x, 0u); });
  dev.atomic_stats().reset();
  EXPECT_EQ(dev.atomic_stats().total(), 0u);
}

TEST(Atomics, SixtyFourBitVariants) {
  Device dev;
  u64 v = 100;
  dev.launch("t", {1, 1}, [&](ThreadCtx& ctx) {
    EXPECT_TRUE(ctx.atomic_min(v, u64{50}));
    EXPECT_TRUE(ctx.atomic_max(v, u64{200}));
    EXPECT_EQ(ctx.atomic_cas(v, u64{200}, u64{1}), 200u);
  });
  EXPECT_EQ(v, 1u);
}

// --- cooperative launch ------------------------------------------------------------

TEST(Cooperative, ThreadsRunUntilDone) {
  Device dev;
  std::vector<int> steps(8, 0);
  const auto ks = dev.launch_cooperative("t", {1, 8}, [&](ThreadCtx& ctx) {
    // Thread i finishes after i+1 steps.
    return ++steps[ctx.global_id()] > static_cast<int>(ctx.global_id());
  });
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(steps[i], static_cast<int>(i) + 1);
  EXPECT_EQ(ks.cooperative_rounds, 8u);
}

TEST(Cooperative, RoundCallbackFiresEveryRound) {
  Device dev;
  u64 calls = 0;
  int remaining = 3;
  dev.launch_cooperative(
      "t", {1, 1}, [&](ThreadCtx&) { return --remaining == 0; },
      [&](u64 round) {
        ++calls;
        EXPECT_EQ(round, calls);
      });
  EXPECT_EQ(calls, 3u);
}

TEST(Cooperative, RunawayKernelIsCaught) {
  Device dev;
  EXPECT_THROW(dev.launch_cooperative(
                   "spin", {1, 1}, [](ThreadCtx&) { return false; },
                   NoRoundHook{}, /*max_rounds=*/100),
               CheckFailure);
}

TEST(Cooperative, ShuffledModeStillCompletes) {
  Device dev({}, 5, ScheduleMode::kShuffled);
  std::vector<int> steps(32, 0);
  dev.launch_cooperative("t", {1, 32}, [&](ThreadCtx& ctx) {
    return ++steps[ctx.global_id()] >= 3;
  });
  for (const int s : steps) EXPECT_EQ(s, 3);
}

// --- block-iterative launch ---------------------------------------------------------

TEST(BlockIterative, RunsUntilBlockFixpoint) {
  Device dev;
  // Each block propagates a token along its 8 threads; thread t updates when
  // its left neighbor holds a value bigger than its own.
  LaunchConfig cfg{2, 8};
  std::vector<u32> val(16, 0);
  val[0] = 5;
  val[8] = 7;
  const auto ks = dev.launch_block_iterative(
      "prop", cfg, [&](ThreadCtx& ctx, u64) {
        const u32 i = ctx.global_id();
        if (ctx.thread_idx() == 0) return false;
        if (val[i - 1] > val[i]) {
          val[i] = val[i - 1];
          return true;
        }
        return false;
      });
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(val[i], 5u);
  for (u32 i = 8; i < 16; ++i) EXPECT_EQ(val[i], 7u);
  ASSERT_EQ(ks.block_inner_iterations.size(), 2u);
  // Ascending sweep propagates in one pass; one more confirms fixpoint.
  EXPECT_EQ(ks.block_inner_iterations[0], 2u);
  EXPECT_EQ(ks.block_inner_iterations[1], 2u);
}

TEST(BlockIterative, SyncCostGrowsWithBlockSize) {
  CostModel cm;
  Device small_dev(cm), large_dev(cm);
  const auto kernel = [](ThreadCtx&, u64 inner) { return inner < 4; };
  const auto a = small_dev.launch_block_iterative("s", {1, 64}, kernel);
  const auto b = large_dev.launch_block_iterative("l", {1, 1024}, kernel);
  EXPECT_GT(b.cost.sync_cost, a.cost.sync_cost);
}

TEST(BlockIterative, RunawayInnerLoopIsCaught) {
  Device dev;
  EXPECT_THROW(dev.launch_block_iterative(
                   "spin", {1, 4}, [](ThreadCtx&, u64) { return true; },
                   /*max_inner=*/50),
               CheckFailure);
}

// --- degenerate launches ---------------------------------------------------------

TEST(Trace, AllIdleLaunchReportsUnitImbalance) {
  // A launch where no thread does any work (every body is a no-op) has
  // active_threads == 0. The defined semantics: such a launch is trivially
  // balanced — imbalance is exactly 1.0, never a division by zero — and it
  // contributes 0% active threads to load_balance().
  Device dev;
  Trace trace;
  dev.set_trace(&trace);
  dev.launch("noop", {2, 32}, [](ThreadCtx&) {});
  ASSERT_EQ(trace.size(), 1u);
  const TraceEvent& e = trace.events()[0];
  EXPECT_EQ(e.active_threads, 0u);
  EXPECT_EQ(e.idle_threads, 64u);
  EXPECT_EQ(e.imbalance, 1.0);
  // The aggregates render without NaNs or infinities.
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("noop,2,32"), std::string::npos);
  EXPECT_EQ(csv.find("nan"), std::string::npos);
  EXPECT_EQ(csv.find("inf"), std::string::npos);
  const std::string lb = trace.load_balance().to_text();
  EXPECT_EQ(lb.find("nan"), std::string::npos);
  EXPECT_EQ(lb.find("inf"), std::string::npos);
}

TEST(Cost, AllIdleImbalanceIsExactlyOne) {
  KernelCost kc;
  kc.active_threads = 0;
  kc.thread_work = 0;
  kc.max_thread_work = 0;
  EXPECT_EQ(kc.imbalance(), 1.0);
}

TEST(BlockIterative, PerBlockIterationCountsIndependent) {
  Device dev;
  // Block 0 stops after its first sweep reports no update; block 1 updates
  // through sweep 4 and confirms on sweep 5.
  const auto ks = dev.launch_block_iterative(
      "t", {2, 4}, [&](ThreadCtx& ctx, u64 inner) {
        if (ctx.block_idx() == 0) return false;
        return inner < 5;
      });
  EXPECT_EQ(ks.block_inner_iterations[0], 1u);
  EXPECT_EQ(ks.block_inner_iterations[1], 5u);
}

}  // namespace
}  // namespace eclp::sim
