// Golden modeled-results invariance test.
//
// Pins the absolute modeled numbers — cycles, launch counts, atomic-outcome
// tallies, algorithm counter totals, and result checksums — for all five
// reproduced ECL codes on fixed generated inputs, under both schedule modes
// and at 1/2/7 sim-threads. The determinism tests prove 1-vs-N equality;
// this test additionally freezes the values themselves, so a refactor of
// the dispatch or cost-charging machinery (e.g. the template launch path,
// batched cost flushes) cannot silently shift any modeled quantity.
//
// Regenerate the golden file after an *intentional* modeling change:
//   ECLP_UPDATE_GOLDEN=1 ./eclp_tests --gtest_filter='ModeledInvariance.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "graph/transforms.hpp"
#include "sim/device.hpp"
#include "sim/pool.hpp"

namespace eclp {
namespace {

constexpr u32 kWorkerCounts[] = {1, 2, 7};
// Seed 0 runs the deterministic schedule; the nonzero seeds exercise the
// shuffled schedule, whose interleaving (and thus every schedule-dependent
// draw) must also survive refactors bit-for-bit.
constexpr u64 kSeeds[] = {0, 12345};

/// FNV-1a over a little-endian byte rendering of integer sequences: a
/// compact, platform-stable checksum of algorithm outputs.
class Checksum {
 public:
  template <typename T>
  void add(const std::vector<T>& values) {
    for (const T& v : values) {
      u64 x = static_cast<u64>(v);
      for (int i = 0; i < 8; ++i) {
        hash_ = (hash_ ^ ((x >> (8 * i)) & 0xff)) * 0x100000001b3ULL;
      }
    }
  }
  void add(u64 v) { add(std::vector<u64>{v}); }
  u64 value() const { return hash_; }

 private:
  u64 hash_ = 0xcbf29ce484222325ULL;
};

/// One golden line: "<algo> seed=<s> <key>=<value> ...", deterministic
/// field order, decimal values only.
class Line {
 public:
  Line(const std::string& algo, u64 seed) {
    os_ << algo << " seed=" << seed;
  }
  Line& field(const std::string& key, u64 value) {
    os_ << ' ' << key << '=' << value;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

void append_device_fields(Line& line, const sim::Device& dev) {
  line.field("cycles", dev.total_cycles());
  line.field("launches", dev.kernel_launches());
  for (usize o = 0; o < static_cast<usize>(sim::AtomicOutcome::kCount_); ++o) {
    line.field("atomic" + std::to_string(o),
               dev.atomic_stats().count(static_cast<sim::AtomicOutcome>(o)));
  }
}

/// Run `body(dev)` under `workers` host threads; returns the golden line.
template <typename Body>
std::string run_line(const std::string& algo, u64 seed, u32 workers,
                     Body&& body) {
  sim::Pool pool(workers);
  sim::Device dev(sim::CostModel{}, seed,
                  seed == 0 ? sim::ScheduleMode::kDeterministic
                            : sim::ScheduleMode::kShuffled);
  dev.set_pool(workers > 1 ? &pool : nullptr);
  Line line(algo, seed);
  body(dev, line);
  append_device_fields(line, dev);
  return line.str();
}

/// Produce every golden line at the given worker count. The line set is
/// identical for all worker counts (that is what the test asserts).
std::vector<std::string> collect(u32 workers) {
  std::vector<std::string> lines;

  const auto g_cc = gen::rmat(11, 16000, 0.45, 0.22, 0.22, 5);
  const auto g_gc = gen::uniform_random(3000, 12000, 9);
  const auto g_mis = gen::uniform_random(3000, 12000, 11);
  const auto g_mst =
      graph::with_random_weights(gen::uniform_random(2500, 10000, 13), 13);
  const auto g_scc = gen::cold_flow(48, 3);

  for (const u64 seed : kSeeds) {
    lines.push_back(run_line("cc", seed, workers,
                             [&](sim::Device& dev, Line& line) {
      const auto res = algos::cc::run(dev, g_cc);
      Checksum sum;
      sum.add(res.labels);
      line.field("result", sum.value());
      line.field("modeled_cycles", res.modeled_cycles);
      line.field("init_cycles", res.init_cycles);
      line.field("vertices_initialized", res.profile.vertices_initialized);
      line.field("init_neighbors_traversed",
                 res.profile.init_neighbors_traversed);
      line.field("representative_calls", res.profile.representative_calls);
      line.field("hook_attempts", res.profile.hook_attempts);
      line.field("hook_cas_success", res.profile.hook_cas_success);
      line.field("hook_cas_failure", res.profile.hook_cas_failure);
    }));

    lines.push_back(run_line("gc", seed, workers,
                             [&](sim::Device& dev, Line& line) {
      const auto res = algos::gc::run(dev, g_gc);
      Checksum sum;
      sum.add(res.colors);
      line.field("result", sum.value());
      line.field("modeled_cycles", res.modeled_cycles);
      line.field("num_colors", res.num_colors);
      line.field("host_iterations", res.host_iterations);
      line.field("shortcut1_colorings", res.shortcut1_colorings);
      line.field("shortcut2_removals", res.shortcut2_removals);
    }));

    lines.push_back(run_line("mis", seed, workers,
                             [&](sim::Device& dev, Line& line) {
      const auto res = algos::mis::run(dev, g_mis);
      Checksum sum;
      sum.add(res.status);
      line.field("result", sum.value());
      line.field("modeled_cycles", res.modeled_cycles);
      line.field("set_size", res.set_size);
      line.field("iterations_total",
                 static_cast<u64>(res.metrics.iterations.total));
      line.field("finalized_total",
                 static_cast<u64>(res.metrics.vertices_finalized.total));
    }));

    lines.push_back(run_line("mst", seed, workers,
                             [&](sim::Device& dev, Line& line) {
      const auto res = algos::mst::run(dev, g_mst);
      Checksum sum;
      sum.add(res.in_mst);
      line.field("result", sum.value());
      line.field("modeled_cycles", res.modeled_cycles);
      line.field("total_weight", res.total_weight);
      line.field("mst_edges", res.mst_edges);
    }));

    lines.push_back(run_line("scc", seed, workers,
                             [&](sim::Device& dev, Line& line) {
      algos::scc::Options opt;
      opt.record_series = true;
      const auto res = algos::scc::run(dev, g_scc, opt);
      Checksum sum;
      sum.add(res.scc_id);
      line.field("result", sum.value());
      Checksum series_sum;
      const std::string csv = res.series.to_csv();
      series_sum.add(std::vector<u8>(csv.begin(), csv.end()));
      line.field("series", series_sum.value());
      line.field("modeled_cycles", res.modeled_cycles);
      line.field("num_sccs", res.num_sccs);
      line.field("outer_iterations", res.outer_iterations);
      Checksum inner_sum;
      inner_sum.add(res.inner_per_outer);
      line.field("inner_per_outer", inner_sum.value());
    }));
  }
  return lines;
}

std::string golden_path() {
  return std::string(ECLP_GOLDEN_DIR) + "/modeled_invariance.txt";
}

std::vector<std::string> read_golden() {
  std::ifstream is(golden_path());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  }
  return lines;
}

TEST(ModeledInvariance, GoldenValuesPinnedAcrossSimThreads) {
  const auto base = collect(1);
  for (const u32 workers : kWorkerCounts) {
    if (workers == 1) continue;
    EXPECT_EQ(collect(workers), base) << workers << " workers";
  }

  if (std::getenv("ECLP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(golden_path());
    ASSERT_TRUE(os) << "cannot write " << golden_path();
    os << "# Golden modeled results (cycles / atomics / counters / result\n"
          "# checksums) for the five ECL codes on fixed generated inputs.\n"
          "# Regenerate: ECLP_UPDATE_GOLDEN=1 ./eclp_tests "
          "--gtest_filter='ModeledInvariance.*'\n";
    for (const auto& line : base) os << line << '\n';
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  const auto golden = read_golden();
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path()
      << " — regenerate with ECLP_UPDATE_GOLDEN=1";
  EXPECT_EQ(base, golden)
      << "modeled results drifted from " << golden_path()
      << "; if the modeling change is intentional, regenerate with "
         "ECLP_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace eclp
