// The §3.1 general metrics every launch collects automatically
// (KernelCost::active_threads / idle_threads / max_thread_work / imbalance)
// and the harness plumbing the benches share.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "harness/harness.hpp"
#include "sim/device.hpp"

namespace eclp {
namespace {

TEST(KernelStats, CountsActiveAndIdleThreads) {
  sim::Device dev;
  // 64 threads; only the first 24 do anything.
  const auto ks = dev.launch("t", {2, 32}, [](sim::ThreadCtx& ctx) {
    if (ctx.global_id() < 24) ctx.charge_alu(5);
  });
  EXPECT_EQ(ks.cost.active_threads, 24u);
  EXPECT_EQ(ks.cost.idle_threads, 40u);
  EXPECT_DOUBLE_EQ(ks.cost.active_fraction(), 24.0 / 64.0);
}

TEST(KernelStats, TracksMaxThreadWorkAndImbalance) {
  sim::Device dev;
  const auto ks = dev.launch("t", {1, 4}, [](sim::ThreadCtx& ctx) {
    // Work 10, 20, 30, 40 -> mean 25, max 40.
    ctx.charge_alu(10 * (ctx.global_id() + 1));
  });
  EXPECT_EQ(ks.cost.max_thread_work, 40u);
  EXPECT_DOUBLE_EQ(ks.cost.imbalance(), 40.0 / 25.0);
}

TEST(KernelStats, AllIdleLaunchIsBalanced) {
  sim::Device dev;
  const auto ks = dev.launch("noop", {1, 8}, [](sim::ThreadCtx&) {});
  EXPECT_EQ(ks.cost.active_threads, 0u);
  EXPECT_EQ(ks.cost.idle_threads, 8u);
  EXPECT_DOUBLE_EQ(ks.cost.imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(ks.cost.active_fraction(), 0.0);
}

TEST(KernelStats, SingleHotThreadSetsCriticalPath) {
  // One thread doing W >> lanes-worth of work must bound the kernel time:
  // the serial chain cannot spread across lanes.
  sim::CostModel cm;
  sim::Device dev(cm);
  const u64 hot = 100000;
  const auto ks = dev.launch("hot", {1, 256}, [&](sim::ThreadCtx& ctx) {
    if (ctx.global_id() == 0) ctx.charge_alu(hot);
  });
  EXPECT_GE(ks.cost.modeled_cycles, hot);  // not hot / lanes_per_sm
}

TEST(KernelStats, BalancedWorkUsesThroughputBound) {
  sim::CostModel cm;
  sim::Device dev(cm);
  // 256 threads x 100 cycles, perfectly balanced: the throughput bound
  // (total / lanes / SMs-ish) applies, far below the serial total.
  const auto ks = dev.launch("flat", {8, 32}, [](sim::ThreadCtx& ctx) {
    ctx.charge_alu(100);
  });
  EXPECT_LT(ks.cost.modeled_cycles, 8 * 32 * 100);
  EXPECT_DOUBLE_EQ(ks.cost.imbalance(), 1.0);
}

// --- harness ----------------------------------------------------------------------

TEST(Harness, ParseDefaultsAndOverrides) {
  const char* argv[] = {"bench", "--scale=tiny", "--runs=5",
                        "--out=/tmp/eclp_harness_test"};
  const auto ctx = harness::parse(4, argv, "test bench");
  EXPECT_EQ(ctx.scale, gen::Scale::kTiny);
  EXPECT_EQ(ctx.runs, 5);
  EXPECT_EQ(ctx.out_dir, "/tmp/eclp_harness_test");
}

TEST(Harness, EmitWritesCsvCopy) {
  const char* argv[] = {"bench", "--out=/tmp/eclp_harness_emit"};
  const auto ctx = harness::parse(2, argv, "test bench");
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"x", "1"});
  harness::emit(ctx, "demo_experiment", t);
  std::ifstream is("/tmp/eclp_harness_emit/demo_experiment.csv");
  ASSERT_TRUE(is.is_open());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "a,b");
  std::filesystem::remove_all("/tmp/eclp_harness_emit");
}

TEST(Harness, MakeDeviceAppliesSeedAndMode) {
  auto det = harness::make_device();
  auto shuf = harness::make_device(9, sim::ScheduleMode::kShuffled);
  EXPECT_EQ(det.schedule_mode(), sim::ScheduleMode::kDeterministic);
  EXPECT_EQ(shuf.schedule_mode(), sim::ScheduleMode::kShuffled);
  EXPECT_EQ(shuf.seed(), 9u);
}

}  // namespace
}  // namespace eclp
