// Coverage of the algorithm option combinations the benches rely on.
#include <gtest/gtest.h>

#include "algos/cc/ecl_cc.hpp"
#include "algos/common.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/transforms.hpp"

namespace eclp::algos {
namespace {

// --- CC init modes ---------------------------------------------------------------

TEST(CcOptions, OwnIdInitStillCorrect) {
  const auto g = gen::rmat(12, 16000, 0.45, 0.22, 0.22, 3);
  sim::Device dev;
  cc::Options opt;
  opt.init_mode = cc::InitMode::kOwnId;
  const auto res = cc::run(dev, g, opt);
  EXPECT_TRUE(cc::verify(g, res.labels));
  // Own-id init does not scan adjacency at all.
  EXPECT_EQ(res.profile.init_neighbors_traversed, 0u);
}

TEST(CcOptions, HeuristicInitReducesHooks) {
  const auto g = gen::uniform_random(8000, 32000, 5);
  sim::Device d1, d2;
  cc::Options naive;
  naive.init_mode = cc::InitMode::kOwnId;
  const auto own = cc::run(d1, g, naive);
  const auto heuristic = cc::run(d2, g);
  EXPECT_LT(heuristic.profile.hook_attempts, own.profile.hook_attempts);
  EXPECT_EQ(normalize_labels(own.labels), normalize_labels(heuristic.labels));
}

TEST(CcOptions, PerVertexTraversalsMatchAggregate) {
  const auto g = gen::citation(6000, 4.0, 0.3, 7);
  sim::Device dev;
  cc::Options opt;
  opt.record_per_vertex_traversals = true;
  const auto res = cc::run(dev, g, opt);
  u64 total = 0;
  for (const u64 t : res.init_traversal_per_vertex) total += t;
  EXPECT_EQ(total, res.profile.init_neighbors_traversed);
}

TEST(CcOptions, PerVertexTraversalsAreBimodal) {
  // Paper §6.1.3: either 1 (first neighbor smaller) or the full degree.
  const auto g = gen::uniform_random(5000, 20000, 9);
  sim::Device dev;
  cc::Options opt;
  opt.record_per_vertex_traversals = true;
  const auto res = cc::run(dev, g, opt);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    const u64 t = res.init_traversal_per_vertex[v];
    if (g.degree(v) == 0) {
      EXPECT_EQ(t, 0u);
    } else {
      EXPECT_TRUE(t == 1 || t == g.degree(v))
          << "vertex " << v << " traversed " << t << " of degree "
          << g.degree(v);
    }
  }
}

TEST(CcOptions, RecordingOffLeavesVectorEmpty) {
  const auto g = gen::grid2d_torus(16);
  sim::Device dev;
  EXPECT_TRUE(cc::run(dev, g).init_traversal_per_vertex.empty());
}

// --- GC shortcuts ------------------------------------------------------------------

TEST(GcOptions, StrictJpStillProper) {
  const auto g = gen::preferential_attachment(3000, 4, 11);
  sim::Device dev;
  gc::Options opt;
  opt.use_shortcuts = false;
  const auto res = gc::run(dev, g, opt);
  EXPECT_TRUE(gc::verify(g, res.colors));
  EXPECT_EQ(res.shortcut1_colorings, 0u);
  EXPECT_EQ(res.shortcut2_removals, 0u);
}

TEST(GcOptions, ShortcutsReduceRounds) {
  const auto g = gen::kronecker(11, 18000, 13);
  sim::Device d1, d2;
  gc::Options strict;
  strict.use_shortcuts = false;
  const auto jp = gc::run(d1, g, strict);
  const auto ecl = gc::run(d2, g);
  EXPECT_LT(ecl.host_iterations, jp.host_iterations);
}

TEST(GcOptions, ShortcutsPreserveColorCount) {
  // Shortcut 1 assigns the same color the vertex would eventually take, so
  // the coloring quality is unchanged (the ECL-GC paper's key claim).
  const auto g = gen::clique_union(2000, 600, 3, 20, 17);
  sim::Device d1, d2;
  gc::Options strict;
  strict.use_shortcuts = false;
  EXPECT_EQ(gc::run(d1, g, strict).num_colors, gc::run(d2, g).num_colors);
}

// --- SCC options --------------------------------------------------------------------

TEST(SccOptions, EdgesPerThreadAffectsCostNotResult) {
  const auto g = gen::toroid_wedge(48, 3);
  u64 prev_cycles = 0;
  usize sccs = 0;
  for (const u32 ept : {1u, 8u}) {
    sim::Device dev;
    scc::Options opt;
    opt.edges_per_thread = ept;
    const auto res = scc::run(dev, g, opt);
    if (sccs == 0) sccs = res.num_sccs;
    EXPECT_EQ(res.num_sccs, sccs);
    if (prev_cycles != 0) {
      EXPECT_NE(res.modeled_cycles, prev_cycles);
    }
    prev_cycles = res.modeled_cycles;
  }
}

TEST(SccOptions, TrimSettlesAcyclicVerticesAndMatches) {
  for (const char* name : {"cold-flow", "star", "toroid-wedge"}) {
    const auto g = gen::find_input(name).make(gen::Scale::kTiny);
    sim::Device d1, d2;
    scc::Options base, trimmed;
    trimmed.trim = true;
    const auto a = scc::run(d1, g, base);
    const auto b = scc::run(d2, g, trimmed);
    EXPECT_EQ(normalize_labels(a.scc_id), normalize_labels(b.scc_id)) << name;
    EXPECT_TRUE(scc::verify(g, b.scc_id)) << name;
  }
}

TEST(SccOptions, TrimResolvesPureChainWithoutPropagation) {
  graph::BuildOptions dopt;
  dopt.directed = true;
  const auto g = graph::from_edges(
      6, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}, {4, 5, 0}}, dopt);
  sim::Device dev;
  scc::Options opt;
  opt.trim = true;
  const auto res = scc::run(dev, g, opt);
  EXPECT_EQ(res.trimmed_vertices, 6u);
  EXPECT_EQ(res.num_sccs, 6u);
  EXPECT_TRUE(scc::verify(g, res.scc_id));
}

TEST(SccOptions, TrimOnRandomDigraphsMatchesTarjan) {
  for (const u64 seed : {31ull, 32ull, 33ull}) {
    Rng rng(seed);
    std::vector<graph::Edge> edges;
    const vidx n = 500;
    for (int e = 0; e < 800; ++e) {
      edges.push_back({static_cast<vidx>(rng.below(n)),
                       static_cast<vidx>(rng.below(n)), 0});
    }
    graph::BuildOptions dopt;
    dopt.directed = true;
    const auto g = graph::from_edges(n, edges, dopt);
    sim::Device dev;
    scc::Options opt;
    opt.trim = true;
    EXPECT_TRUE(scc::verify(g, scc::run(dev, g, opt).scc_id))
        << "seed " << seed;
  }
}

// --- MIS options --------------------------------------------------------------------

TEST(MisOptions, QuantumScalesIterations) {
  const auto g = gen::uniform_random(20000, 60000, 21);
  sim::Device d1, d2;
  mis::Options small_q, big_q;
  small_q.quantum = 8;
  big_q.quantum = 256;
  const auto a = mis::run(d1, g, small_q);
  const auto b = mis::run(d2, g, big_q);
  EXPECT_TRUE(mis::verify(g, a.status));
  EXPECT_TRUE(mis::verify(g, b.status));
  // More spinning per round => more counted iterations.
  EXPECT_GT(b.metrics.iterations.mean, a.metrics.iterations.mean);
}

TEST(MisOptions, ResultIndependentOfVisibilityAndPacing) {
  // ECL-MIS is deterministic in its final result (paper §3): the priority
  // order fully determines the set, whatever the schedule or pacing.
  const auto g = gen::preferential_attachment(6000, 5, 23);
  std::vector<u8> first;
  for (const auto vis :
       {mis::Visibility::kImmediate, mis::Visibility::kRoundSnapshot}) {
    for (const u64 q : {0ull, 48ull, 512ull}) {
      sim::Device dev;
      mis::Options opt;
      opt.visibility = vis;
      opt.quantum = q;
      auto res = mis::run(dev, g, opt);
      if (first.empty()) {
        first = std::move(res.status);
      } else {
        EXPECT_EQ(res.status, first);
      }
    }
  }
}

TEST(MisOptions, AllPriorityModesProduceValidSets) {
  const auto g = gen::internet_topology(8000, 41);
  for (const auto mode : {mis::Priority::kDegreeAware,
                          mis::Priority::kUniformHash,
                          mis::Priority::kVertexId}) {
    sim::Device dev;
    mis::Options opt;
    opt.priority = mode;
    const auto res = mis::run(dev, g, opt);
    EXPECT_TRUE(mis::verify(g, res.status))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(MisOptions, DegreeAwarePriorityGrowsTheSet) {
  // The purpose of ECL-MIS's priority function (paper §2.3): favoring
  // low-degree vertices boosts the MIS size on skewed-degree inputs.
  const auto g = gen::preferential_attachment(20000, 6, 43);
  sim::Device d1, d2;
  mis::Options aware, uniform;
  uniform.priority = mis::Priority::kUniformHash;
  const auto a = mis::run(d1, g, aware);
  const auto b = mis::run(d2, g, uniform);
  EXPECT_GT(a.set_size, b.set_size);
}

// --- MST options --------------------------------------------------------------------

TEST(MstOptions, FilterPercentileSweepKeepsWeight) {
  const auto g = graph::with_random_weights(
      gen::clique_union(1500, 700, 2, 9, 27), 27);
  const u64 want = mst::reference_total_weight(g);
  for (const double pct : {0.0, 25.0, 50.0, 75.0, 90.0}) {
    sim::Device dev;
    mst::Options opt;
    opt.filter_percentile = pct;
    EXPECT_EQ(mst::run(dev, g, opt).total_weight, want) << "pct " << pct;
  }
}

TEST(MstOptions, ThreadsPerBlockSweepKeepsWeight) {
  const auto g =
      graph::with_random_weights(gen::uniform_random(2000, 8000, 29), 29);
  const u64 want = mst::reference_total_weight(g);
  for (const u32 tpb : {32u, 128u, 1024u}) {
    sim::Device dev;
    mst::Options opt;
    opt.threads_per_block = tpb;
    EXPECT_EQ(mst::run(dev, g, opt).total_weight, want) << "tpb " << tpb;
  }
}

}  // namespace
}  // namespace eclp::algos
