#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"

namespace eclp::graph {
namespace {

void expect_same_graph(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.directed(), b.directed());
  EXPECT_EQ(a.weighted(), b.weighted());
  for (vidx v = 0; v < a.num_vertices(); ++v) {
    const auto an = a.neighbors(v), bn = b.neighbors(v);
    ASSERT_TRUE(std::equal(an.begin(), an.end(), bn.begin(), bn.end()))
        << "vertex " << v;
    if (a.weighted()) {
      const auto aw = a.weights_of(v), bw = b.weights_of(v);
      ASSERT_TRUE(std::equal(aw.begin(), aw.end(), bw.begin(), bw.end()));
    }
  }
}

TEST(BinaryIo, RoundtripUnweighted) {
  const auto g = gen::grid2d_torus(8);
  std::stringstream ss;
  write_binary(g, ss);
  expect_same_graph(g, read_binary(ss));
}

TEST(BinaryIo, RoundtripWeightedDirected) {
  BuildOptions opt;
  opt.directed = true;
  opt.weighted = true;
  const auto g = from_edges(4, {{0, 1, 9}, {1, 2, 8}, {3, 0, 7}}, opt);
  std::stringstream ss;
  write_binary(g, ss);
  expect_same_graph(g, read_binary(ss));
}

TEST(BinaryIo, BadMagicRejected) {
  std::stringstream ss;
  ss << "this is not a graph file at all, definitely not";
  EXPECT_THROW(read_binary(ss), CheckFailure);
}

TEST(BinaryIo, TruncatedStreamRejected) {
  const auto g = gen::grid2d_torus(8);
  std::stringstream ss;
  write_binary(g, ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_binary(truncated), CheckFailure);
}

TEST(BinaryIo, FileRoundtrip) {
  const auto g = gen::uniform_random(100, 300, 5);
  const auto path =
      (std::filesystem::temp_directory_path() / "eclp_io_test.eclg").string();
  save_binary(g, path);
  expect_same_graph(g, load_binary(path));
  std::remove(path.c_str());
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(load_binary("/nonexistent/path/graph.eclg"), CheckFailure);
}

TEST(MatrixMarket, RoundtripSymmetricPattern) {
  const auto g = gen::grid2d_torus(6);
  std::stringstream ss;
  write_matrix_market(g, ss);
  expect_same_graph(g, read_matrix_market(ss));
}

TEST(MatrixMarket, RoundtripGeneralInteger) {
  BuildOptions opt;
  opt.directed = true;
  opt.weighted = true;
  const auto g = from_edges(5, {{0, 1, 3}, {2, 4, 11}, {4, 0, 1}}, opt);
  std::stringstream ss;
  write_matrix_market(g, ss);
  expect_same_graph(g, read_matrix_market(ss));
}

TEST(MatrixMarket, ReadsHandWrittenFixture) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment line\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  const auto g = read_matrix_market(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);  // two undirected edges
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(MatrixMarket, RejectsNonSquare) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 4 1\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(ss), CheckFailure);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream ss("%%NotMatrixMarket whatever\n");
  EXPECT_THROW(read_matrix_market(ss), CheckFailure);
}

TEST(MatrixMarket, RejectsOutOfRangeIndex) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "3 1\n");
  EXPECT_THROW(read_matrix_market(ss), CheckFailure);
}

TEST(EdgeList, ReadsSnapStyleInput) {
  std::stringstream ss(
      "# SNAP-style comment\n"
      "0 1\n"
      "1 2\n"
      "\n"
      "2 0\n");
  const auto g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 6u);
}

TEST(EdgeList, ReadsWeights) {
  std::stringstream ss("0 1 5\n1 2 7\n");
  const auto g = read_edge_list(ss);
  ASSERT_TRUE(g.weighted());
  EXPECT_EQ(g.weights_of(0)[0], 5u);
}

TEST(EdgeList, RoundtripUndirected) {
  const auto g = gen::uniform_random(60, 150, 3);
  std::stringstream ss;
  write_edge_list(g, ss);
  expect_same_graph(g, read_edge_list(ss, false, g.num_vertices()));
}

TEST(EdgeList, RoundtripDirectedWeighted) {
  BuildOptions opt;
  opt.directed = true;
  opt.weighted = true;
  const auto g = from_edges(6, {{0, 5, 2}, {5, 1, 3}, {2, 2, 4}, {4, 3, 9}},
                            opt);
  std::stringstream ss;
  write_edge_list(g, ss);
  expect_same_graph(g, read_edge_list(ss, true, g.num_vertices()));
}

TEST(EdgeList, MalformedLineThrows) {
  std::stringstream ss("0 not-a-number\n");
  EXPECT_THROW(read_edge_list(ss), CheckFailure);
}

TEST(EdgeList, ForcedVertexCountTooSmallThrows) {
  std::stringstream ss("0 9\n");
  EXPECT_THROW(read_edge_list(ss, false, 5), CheckFailure);
}

}  // namespace
}  // namespace eclp::graph
