// Tests for the serving-layer metrics registry (support/metrics.hpp):
// sharded counter/histogram correctness under concurrency, gauge
// semantics, find-or-create registration, and the name-sorted snapshot
// that makes telemetry exports deterministic.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "profile/histogram.hpp"
#include "support/metrics.hpp"

namespace eclp {
namespace {

TEST(Metrics, CounterAccumulatesDeltas) {
  metrics::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, CounterSumsAcrossConcurrentThreads) {
  metrics::Counter c;
  constexpr u32 kThreads = 8;
  constexpr u64 kPerThread = 20000;
  std::vector<std::thread> threads;
  for (u32 t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (u64 i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), u64{kThreads} * kPerThread);
}

TEST(Metrics, GaugeMovesBothWays) {
  metrics::Gauge g;
  g.add(10);
  g.sub(3);
  EXPECT_EQ(g.value(), 7);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST(Metrics, HistogramMergesShardsExactly) {
  metrics::Histogram h;
  constexpr u32 kThreads = 8;
  constexpr u64 kPerThread = 5000;
  std::vector<std::thread> threads;
  for (u32 t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (u64 i = 0; i < kPerThread; ++i) h.observe(t);
    });
  }
  for (auto& t : threads) t.join();
  const auto m = h.merged();
  EXPECT_EQ(m.count, u64{kThreads} * kPerThread);
  u64 expected_sum = 0;
  for (u32 t = 0; t < kThreads; ++t) expected_sum += u64{t} * kPerThread;
  EXPECT_EQ(m.sum, expected_sum);
  // Values 0..7 land in log2 buckets 0,1,2,2,3,3,3,3.
  EXPECT_EQ(m.buckets[0], kPerThread);
  EXPECT_EQ(m.buckets[1], kPerThread);
  EXPECT_EQ(m.buckets[2], 2 * kPerThread);
  EXPECT_EQ(m.buckets[3], 4 * kPerThread);
}

TEST(Metrics, HistogramQuantileFloorMatchesBucketFloors) {
  metrics::Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(1);
  for (int i = 0; i < 10; ++i) h.observe(1000);
  const auto m = h.merged();
  EXPECT_EQ(m.quantile_floor(0.50), 1u);
  // 1000 lands in bucket [512, 1024): its floor, not the raw value.
  EXPECT_EQ(m.quantile_floor(0.99),
            profile::Log2Histogram::bucket_floor(
                profile::Log2Histogram::bucket_of(1000)));
}

TEST(Metrics, EmptyHistogramQuantileIsZero) {
  const metrics::Histogram h;
  const auto m = h.merged();
  EXPECT_EQ(m.count, 0u);
  EXPECT_EQ(m.quantile_floor(0.0), 0u);
  EXPECT_EQ(m.quantile_floor(0.99), 0u);
}

TEST(Metrics, RegistryFindOrCreateReturnsStableInstruments) {
  metrics::Registry r;
  metrics::Counter& a = r.counter("serve.requests");
  a.inc(3);
  metrics::Counter& b = r.counter("serve.requests");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(&r.gauge("pool.bytes"), &r.gauge("pool.bytes"));
  EXPECT_EQ(&r.histogram("latency"), &r.histogram("latency"));
}

TEST(Metrics, RegistryRejectsCrossKindNameCollisions) {
  metrics::Registry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), CheckFailure);
  EXPECT_THROW(r.histogram("x"), CheckFailure);
  r.gauge("y");
  EXPECT_THROW(r.counter("y"), CheckFailure);
}

TEST(Metrics, SnapshotIsNameSortedRegardlessOfRegistrationOrder) {
  metrics::Registry r;
  r.counter("zeta").inc();
  r.counter("alpha").inc(2);
  r.counter("mid").inc(3);
  r.gauge("b.gauge").set(1);
  r.gauge("a.gauge").set(2);
  r.histogram("z.hist").observe(1);
  r.histogram("a.hist").observe(2);
  const metrics::Snapshot s = r.snapshot();
  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_EQ(s.counters[0].first, "alpha");
  EXPECT_EQ(s.counters[1].first, "mid");
  EXPECT_EQ(s.counters[2].first, "zeta");
  EXPECT_EQ(s.counters[0].second, 2u);
  ASSERT_EQ(s.gauges.size(), 2u);
  EXPECT_EQ(s.gauges[0].first, "a.gauge");
  EXPECT_EQ(s.gauges[1].first, "b.gauge");
  ASSERT_EQ(s.histograms.size(), 2u);
  EXPECT_EQ(s.histograms[0].name, "a.hist");
  EXPECT_EQ(s.histograms[1].name, "z.hist");
  EXPECT_EQ(s.histograms[0].data.count, 1u);
}

TEST(Metrics, SnapshotWhileIncrementingNeverTearsTotals) {
  // A snapshot taken mid-increment sees some prefix of each thread's adds —
  // never a torn or negative value. Run a writer and a snapshotter
  // concurrently and bound-check every observation.
  metrics::Registry r;
  metrics::Counter& c = r.counter("c");
  std::thread writer([&c] {
    for (u64 i = 0; i < 50000; ++i) c.inc();
  });
  u64 last = 0;
  for (int i = 0; i < 100; ++i) {
    const metrics::Snapshot s = r.snapshot();
    ASSERT_EQ(s.counters.size(), 1u);
    EXPECT_GE(s.counters[0].second, last);  // monotone under one writer
    EXPECT_LE(s.counters[0].second, 50000u);
    last = s.counters[0].second;
  }
  writer.join();
  EXPECT_EQ(r.snapshot().counters[0].second, 50000u);
}

}  // namespace
}  // namespace eclp
